package core

import (
	"encoding/binary"
	"fmt"

	"distreach/internal/graph"
)

// Binary wire codecs for the partial answers, used by the TCP runtime
// (internal/netsite). The encodings realize the byte accounting of the
// in-process simulation: an equation costs its node ID plus its disjunct
// list. All integers are little-endian; formats carry a leading version
// byte so they can evolve.

const wireVersion = 1

// appendU32 and friends keep the codecs allocation-light.
func appendU32(b []byte, v uint32) []byte { return binary.LittleEndian.AppendUint32(b, v) }
func appendU64(b []byte, v uint64) []byte { return binary.LittleEndian.AppendUint64(b, v) }

type reader struct {
	b   []byte
	off int
	err error
}

func (r *reader) u8() byte {
	if r.err != nil || r.off+1 > len(r.b) {
		r.fail()
		return 0
	}
	v := r.b[r.off]
	r.off++
	return v
}

func (r *reader) u32() uint32 {
	if r.err != nil || r.off+4 > len(r.b) {
		r.fail()
		return 0
	}
	v := binary.LittleEndian.Uint32(r.b[r.off:])
	r.off += 4
	return v
}

func (r *reader) u64() uint64 {
	if r.err != nil || r.off+8 > len(r.b) {
		r.fail()
		return 0
	}
	v := binary.LittleEndian.Uint64(r.b[r.off:])
	r.off += 8
	return v
}

func (r *reader) fail() {
	if r.err == nil {
		r.err = fmt.Errorf("core: truncated wire payload at offset %d", r.off)
	}
}

// count guards length prefixes against hostile payloads: each counted item
// occupies at least min bytes of the remaining buffer.
func (r *reader) count(n uint32, min int) int {
	if r.err != nil {
		return 0
	}
	if int(n) < 0 || int(n)*min > len(r.b)-r.off {
		r.fail()
		return 0
	}
	return int(n)
}

// MarshalBinary implements encoding.BinaryMarshaler for ReachPartial.
func (rv *ReachPartial) MarshalBinary() ([]byte, error) {
	b := []byte{wireVersion}
	b = appendU32(b, uint32(len(rv.eqs)))
	for _, eq := range rv.eqs {
		b = appendU32(b, uint32(eq.node))
		if eq.constTrue {
			b = append(b, 1)
		} else {
			b = append(b, 0)
		}
		b = appendU32(b, uint32(len(eq.vars)))
		for _, v := range eq.vars {
			b = appendU32(b, uint32(v))
		}
	}
	return b, nil
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler for ReachPartial.
func (rv *ReachPartial) UnmarshalBinary(data []byte) error {
	r := &reader{b: data}
	if v := r.u8(); v != wireVersion && r.err == nil {
		return fmt.Errorf("core: unsupported ReachPartial version %d", v)
	}
	n := r.count(r.u32(), 9)
	eqs := make([]reachEq, 0, n)
	for i := 0; i < n; i++ {
		eq := reachEq{node: graph.NodeID(r.u32()), constTrue: r.u8() == 1}
		nv := r.count(r.u32(), 4)
		for j := 0; j < nv; j++ {
			eq.vars = append(eq.vars, graph.NodeID(r.u32()))
		}
		eqs = append(eqs, eq)
	}
	if r.err != nil {
		return r.err
	}
	rv.eqs = eqs
	return nil
}

// MarshalBinary implements encoding.BinaryMarshaler for DistPartial.
func (rv *DistPartial) MarshalBinary() ([]byte, error) {
	b := []byte{wireVersion}
	b = appendU32(b, uint32(len(rv.eqs)))
	for _, eq := range rv.eqs {
		b = appendU32(b, uint32(eq.node))
		b = appendU32(b, uint32(len(eq.terms)))
		for _, term := range eq.terms {
			if term.isConst {
				b = append(b, 1)
			} else {
				b = append(b, 0)
			}
			b = appendU32(b, uint32(term.varNode))
			b = appendU64(b, uint64(term.w))
		}
	}
	return b, nil
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler for DistPartial.
func (rv *DistPartial) UnmarshalBinary(data []byte) error {
	r := &reader{b: data}
	if v := r.u8(); v != wireVersion && r.err == nil {
		return fmt.Errorf("core: unsupported DistPartial version %d", v)
	}
	n := r.count(r.u32(), 8)
	eqs := make([]distEq, 0, n)
	for i := 0; i < n; i++ {
		eq := distEq{node: graph.NodeID(r.u32())}
		nt := r.count(r.u32(), 13)
		for j := 0; j < nt; j++ {
			term := distTerm{isConst: r.u8() == 1}
			term.varNode = graph.NodeID(r.u32())
			term.w = int64(r.u64())
			eq.terms = append(eq.terms, term)
		}
		eqs = append(eqs, eq)
	}
	if r.err != nil {
		return r.err
	}
	rv.eqs = eqs
	return nil
}

// MarshalBinary implements encoding.BinaryMarshaler for RPQPartial.
func (rv *RPQPartial) MarshalBinary() ([]byte, error) {
	b := []byte{wireVersion}
	b = appendU32(b, uint32(rv.varSpace))
	b = appendU32(b, uint32(len(rv.eqs)))
	for _, eq := range rv.eqs {
		b = appendU32(b, uint32(eq.node))
		b = appendU32(b, uint32(len(eq.entries)))
		for _, e := range eq.entries {
			b = appendU32(b, uint32(e.state))
			if e.constTrue {
				b = append(b, 1)
			} else {
				b = append(b, 0)
			}
			b = appendU32(b, uint32(len(e.vars)))
			for _, v := range e.vars {
				b = appendU64(b, uint64(v))
			}
		}
	}
	return b, nil
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler for RPQPartial.
func (rv *RPQPartial) UnmarshalBinary(data []byte) error {
	r := &reader{b: data}
	if v := r.u8(); v != wireVersion && r.err == nil {
		return fmt.Errorf("core: unsupported RPQPartial version %d", v)
	}
	varSpace := int(r.u32())
	n := r.count(r.u32(), 8)
	eqs := make([]rpqEqs, 0, n)
	for i := 0; i < n; i++ {
		eq := rpqEqs{node: graph.NodeID(r.u32())}
		ne := r.count(r.u32(), 9)
		for j := 0; j < ne; j++ {
			e := rpqEntry{state: int(r.u32())}
			e.constTrue = r.u8() == 1
			nv := r.count(r.u32(), 8)
			for k := 0; k < nv; k++ {
				e.vars = append(e.vars, rpqVar(r.u64()))
			}
			eq.entries = append(eq.entries, e)
		}
		eqs = append(eqs, eq)
	}
	if r.err != nil {
		return r.err
	}
	rv.eqs = eqs
	rv.varSpace = varSpace
	return nil
}
