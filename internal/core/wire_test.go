package core

import (
	"testing"

	"distreach/internal/automaton"
	"distreach/internal/gen"
	"distreach/internal/graph"
)

func TestReachPartialRoundTrip(t *testing.T) {
	rng := gen.NewRNG(51)
	for trial := 0; trial < 100; trial++ {
		_, fr, s, tt := randomCase(rng, nil)
		for _, f := range fr.Fragments() {
			rv := LocalEvalReach(f, s, tt, nil)
			data, err := rv.MarshalBinary()
			if err != nil {
				t.Fatal(err)
			}
			var back ReachPartial
			if err := back.UnmarshalBinary(data); err != nil {
				t.Fatal(err)
			}
			if len(back.eqs) != len(rv.eqs) {
				t.Fatalf("equation count changed: %d -> %d", len(rv.eqs), len(back.eqs))
			}
			for i := range rv.eqs {
				a, b := rv.eqs[i], back.eqs[i]
				if a.node != b.node || a.constTrue != b.constTrue || len(a.vars) != len(b.vars) {
					t.Fatalf("equation %d changed: %+v vs %+v", i, a, b)
				}
				for j := range a.vars {
					if a.vars[j] != b.vars[j] {
						t.Fatalf("var %d changed", j)
					}
				}
			}
		}
	}
}

func TestDistPartialRoundTrip(t *testing.T) {
	rng := gen.NewRNG(52)
	for trial := 0; trial < 100; trial++ {
		_, fr, s, tt := randomCase(rng, nil)
		for _, f := range fr.Fragments() {
			rv := LocalEvalDist(f, s, tt, 8)
			data, err := rv.MarshalBinary()
			if err != nil {
				t.Fatal(err)
			}
			var back DistPartial
			if err := back.UnmarshalBinary(data); err != nil {
				t.Fatal(err)
			}
			// The decoded partial must solve to the same distances.
			if a, b := SolveDist([]*DistPartial{rv}, s), SolveDist([]*DistPartial{&back}, s); a != b {
				t.Fatalf("solutions differ after round trip: %d vs %d", a, b)
			}
		}
	}
}

func TestRPQPartialRoundTrip(t *testing.T) {
	rng := gen.NewRNG(53)
	for trial := 0; trial < 100; trial++ {
		_, fr, s, tt := randomCase(rng, testLabels)
		a := automaton.Random(rng, 2+rng.Intn(6), 4+rng.Intn(10), testLabels)
		partials := make([]*RPQPartial, 0, fr.Card())
		decoded := make([]*RPQPartial, 0, fr.Card())
		for _, f := range fr.Fragments() {
			rv := LocalEvalRPQ(f, s, tt, a)
			data, err := rv.MarshalBinary()
			if err != nil {
				t.Fatal(err)
			}
			back := new(RPQPartial)
			if err := back.UnmarshalBinary(data); err != nil {
				t.Fatal(err)
			}
			partials = append(partials, rv)
			decoded = append(decoded, back)
		}
		if x, y := SolveRPQ(partials, s, a), SolveRPQ(decoded, s, a); x != y {
			t.Fatalf("trial %d: answers differ after round trip: %v vs %v", trial, x, y)
		}
	}
}

func TestUnmarshalRejectsGarbage(t *testing.T) {
	garbage := [][]byte{
		nil,
		{},
		{99},                     // wrong version
		{1, 255, 255, 255, 255},  // absurd count
		{1, 2, 0, 0, 0},          // count 2 but no data
		{1, 1, 0, 0, 0, 7, 0, 0}, // truncated equation
	}
	for _, data := range garbage {
		var rv ReachPartial
		if err := rv.UnmarshalBinary(data); err == nil {
			t.Errorf("ReachPartial accepted %v", data)
		}
		var dv DistPartial
		if err := dv.UnmarshalBinary(data); err == nil {
			t.Errorf("DistPartial accepted %v", data)
		}
		var qv RPQPartial
		if err := qv.UnmarshalBinary(data); err == nil {
			t.Errorf("RPQPartial accepted %v", data)
		}
	}
	_ = graph.None
}
