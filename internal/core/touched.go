package core

import (
	"sort"

	"distreach/internal/graph"
)

// Touched-fragment analysis for answer-cache invalidation. The solved
// value of a query depends only on the equations in the dependency closure
// of the source variable Xs: starting from s, follow each equation's
// variables (boundary nodes) transitively. A fragment outside that closure
// cannot influence the answer — and, because an edge update always dirties
// the fragment storing the edge's source, it cannot influence the answer
// AFTER any sequence of single-edge updates either, unless one of those
// updates dirtied a closure fragment first:
//
// A new path enabled (or an old path destroyed) by an update must use the
// updated edge (x, y); the path's prefix up to the first updated edge
// existed at evaluation time, so s reached x then, so x's fragment is in
// the closure — and every update to (x, y) dirties x's fragment. Evicting
// cache entries whose touched set intersects an update's dirty set is
// therefore sound, while entries whose closure avoids the dirtied
// fragments keep serving hits.
//
// The functions below compute, per query, the indices of the partials that
// own at least one equation in the closure of Xs. The indices refer to
// positions in the partials slice: callers align those with site /
// fragment IDs.

// touchedWalk runs the closure BFS shared by all three query classes over
// a node -> (owners, successor nodes) view of the equation system.
func touchedWalk(s graph.NodeID, eqsOf map[graph.NodeID][]int, varsOf map[graph.NodeID][]graph.NodeID) []int {
	touched := map[int]bool{}
	seen := map[graph.NodeID]bool{s: true}
	stack := []graph.NodeID{s}
	for len(stack) > 0 {
		x := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, site := range eqsOf[x] {
			touched[site] = true
		}
		for _, v := range varsOf[x] {
			if !seen[v] {
				seen[v] = true
				stack = append(stack, v)
			}
		}
	}
	out := make([]int, 0, len(touched))
	for site := range touched {
		out = append(out, site)
	}
	sort.Ints(out)
	return out
}

// TouchedReach reports which partials the answer of qr(s, t) depends on:
// the (sorted) indices into partials owning an equation in the dependency
// closure of Xs. Nil partials are skipped.
func TouchedReach(partials []*ReachPartial, s graph.NodeID) []int {
	eqsOf := map[graph.NodeID][]int{}
	varsOf := map[graph.NodeID][]graph.NodeID{}
	for i, rv := range partials {
		if rv == nil {
			continue
		}
		for _, eq := range rv.eqs {
			eqsOf[eq.node] = append(eqsOf[eq.node], i)
			varsOf[eq.node] = append(varsOf[eq.node], eq.vars...)
		}
	}
	return touchedWalk(s, eqsOf, varsOf)
}

// TouchedDist is TouchedReach for the min-equations of qbr(s, t, l).
func TouchedDist(partials []*DistPartial, s graph.NodeID) []int {
	eqsOf := map[graph.NodeID][]int{}
	varsOf := map[graph.NodeID][]graph.NodeID{}
	for i, rv := range partials {
		if rv == nil {
			continue
		}
		for _, eq := range rv.eqs {
			eqsOf[eq.node] = append(eqsOf[eq.node], i)
			for _, term := range eq.terms {
				if !term.isConst {
					varsOf[eq.node] = append(varsOf[eq.node], term.varNode)
				}
			}
		}
	}
	return touchedWalk(s, eqsOf, varsOf)
}

// TouchedRPQ is TouchedReach for qrr(s, t, R); nq is the query automaton's
// state count (the variable key stride). The closure is tracked at node
// granularity (states collapsed), which only over-approximates. When s has
// no equation in any partial — LocalEvalRPQ emits one for every in-node
// and for a locally stored s, so this means the partials say nothing about
// s — every index is reported, the conservative tag.
func TouchedRPQ(partials []*RPQPartial, s graph.NodeID, nq int) []int {
	eqsOf := map[graph.NodeID][]int{}
	varsOf := map[graph.NodeID][]graph.NodeID{}
	for i, rv := range partials {
		if rv == nil {
			continue
		}
		for _, eq := range rv.eqs {
			eqsOf[eq.node] = append(eqsOf[eq.node], i)
			for _, e := range eq.entries {
				for _, v := range e.vars {
					varsOf[eq.node] = append(varsOf[eq.node], graph.NodeID(v/int64(nq)))
				}
			}
		}
	}
	if len(eqsOf[s]) == 0 {
		all := make([]int, 0, len(partials))
		for i, rv := range partials {
			if rv != nil {
				all = append(all, i)
			}
		}
		return all
	}
	return touchedWalk(s, eqsOf, varsOf)
}
