package core

import (
	"testing"

	"distreach/internal/automaton"
	"distreach/internal/cluster"
	"distreach/internal/fragment"
	"distreach/internal/gen"
	"distreach/internal/graph"
)

// TestRegressionTargetAsAliasRep pins a bug found by testing/quick: when
// the target t is itself an in-node and shares a local SCC with other
// in-nodes, the SCC-alias compression could elect t as the representative;
// Xt's equation then lacked the trivially-true constant (t reaches itself),
// so truth never flowed through the alias chain. Instance: seed
// 0x7835d3ab52e3ade1, n=17, k=2, qr(1, 6) — node 6 is an in-node of
// fragment 0 and the target.
func TestRegressionTargetAsAliasRep(t *testing.T) {
	seed := uint64(0x7835d3ab52e3ade1)
	rng := gen.NewRNG(seed)
	n := 2 + rng.Intn(30)
	g := gen.Uniform(gen.Config{Nodes: n, Edges: rng.Intn(3 * n), Seed: seed})
	fr, err := fragment.Random(g, 2, seed)
	if err != nil {
		t.Fatal(err)
	}
	s, tt := graph.NodeID(1), graph.NodeID(6)
	cl := cluster.New(fr.Card(), cluster.NetModel{})
	if got, want := DisReach(cl, fr, s, tt, nil).Answer, g.Reachable(s, tt); got != want {
		t.Fatalf("disReach = %v, oracle = %v", got, want)
	}
	if res := DisDist(cl, fr, s, tt, n, nil); int(res.Distance) != g.Dist(s, tt) {
		t.Fatalf("disDist distance = %d, oracle = %d", res.Distance, g.Dist(s, tt))
	}
}

// TestSoakAllAlgorithms is a broad randomized soak across all three query
// classes with target-as-in-node instances deliberately over-represented
// (small graphs, many fragments, targets drawn from a small range so they
// often sit on fragment boundaries).
func TestSoakAllAlgorithms(t *testing.T) {
	rng := gen.NewRNG(0xfeedface)
	labels := []string{"A", "B", "C"}
	trials := 800
	if testing.Short() {
		trials = 150
	}
	for trial := 0; trial < trials; trial++ {
		n := 2 + rng.Intn(24)
		g := gen.Uniform(gen.Config{Nodes: n, Edges: rng.Intn(4 * n), Labels: labels, Seed: rng.Uint64()})
		k := 1 + rng.Intn(6)
		fr, err := fragment.Random(g, k, rng.Uint64())
		if err != nil {
			t.Fatal(err)
		}
		cl := cluster.New(k, cluster.NetModel{})
		s := graph.NodeID(rng.Intn(n))
		tt := graph.NodeID(rng.Intn(min(6, n))) // bias towards few targets
		if got, want := DisReach(cl, fr, s, tt, nil).Answer, g.Reachable(s, tt); got != want {
			t.Fatalf("trial %d: disReach=%v oracle=%v (s=%d t=%d %v %v)", trial, got, want, s, tt, g, fr)
		}
		l := rng.Intn(8)
		res := DisDist(cl, fr, s, tt, l, nil)
		d := g.Dist(s, tt)
		if want := d >= 0 && d <= l; res.Answer != want {
			t.Fatalf("trial %d: disDist=%v oracle dist=%d l=%d", trial, res.Answer, d, l)
		}
		a := automaton.Random(rng, 2+rng.Intn(6), 4+rng.Intn(10), labels)
		if got, want := DisRPQ(cl, fr, s, tt, a, nil).Answer, automaton.Eval(g, s, tt, a); got != want {
			t.Fatalf("trial %d: disRPQ=%v oracle=%v", trial, got, want)
		}
	}
}
