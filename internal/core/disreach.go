package core

import (
	"distreach/internal/bes"
	"distreach/internal/cluster"
	"distreach/internal/fragment"
	"distreach/internal/graph"
	"distreach/internal/reachindex"
)

// querySize is the wire size of a posted (bounded) reachability query: two
// node IDs plus a kind/bound word. The paper treats |qr(s,t)| as negligible.
const querySize = 12

// Result is the outcome of one distributed evaluation.
type Result struct {
	Answer bool
	Report cluster.Report
}

// reachEq is one Boolean equation Xv = constTrue ∨ (∨ Xv') produced by
// local evaluation: v is an in-node (or the source s), and the variables on
// the right-hand side are the virtual nodes of the fragment that v reaches
// locally.
type reachEq struct {
	node      graph.NodeID
	constTrue bool
	vars      []graph.NodeID
}

// ReachPartial is Fi.rvset: the partial answer of one fragment to a
// reachability query. It is produced by LocalEvalReach at a site (or a
// mapper) and consumed by SolveReach at the coordinator (or the reducer).
type ReachPartial struct {
	eqs []reachEq
}

// LocalEvalReach is the exported form of procedure localEval, used by the
// MapReduce adaptation, the incremental session and the wire sites. Pass
// s = graph.None to compute the in-node equations only (no source
// equation). A nil opt means defaults; it used to be silently replaced by
// a fresh &Options{}, which dropped every caller-supplied option
// (LocalIndex, NoFragmentIndex) on the MapReduce and session paths.
//
// When opt.Cancel fires mid-evaluation the partial is abandoned and nil is
// returned; callers running under cooperative cancellation must treat nil
// as "no reply owed".
func LocalEvalReach(f *fragment.Fragment, s, t graph.NodeID, opt *Options) *ReachPartial {
	rv, _ := localEvalStream(f, s, t, opt, nil)
	return rv
}

// MaxStreamChunks bounds the number of partial-equation chunks a streaming
// local evaluation emits before the final complete answer. The netsite
// protocol relies on this bound to size per-request reply buffers so a
// site can never stall the coordinator's demultiplexer.
const MaxStreamChunks = 8

// LocalEvalReachStream runs localEval in anytime mode: as equations are
// produced they are handed to emit in chunks (at most MaxStreamChunks
// calls, geometrically growing so the first certificate-closing equations
// ship immediately). The chunk passed to emit aliases internal storage and
// is only valid for the duration of the call. emit returning false — or
// opt.Cancel firing — abandons the evaluation: the return is (nil, false).
// Otherwise the complete partial is returned with ok=true; it includes
// every equation already streamed (chunks are a redundant prefix, sound to
// re-add since disjunctive equation systems are idempotent under Add).
//
// To surface certificates early the in-node order is biased: the source's
// equation is evaluated first, and when t is stored locally the in-nodes
// sharing t's SCC (whose equations close certificates with a constant
// true) come next.
func LocalEvalReachStream(f *fragment.Fragment, s, t graph.NodeID, opt *Options, emit func(chunk *ReachPartial) bool) (*ReachPartial, bool) {
	return localEvalStream(f, s, t, opt, emit)
}

// WireSize reports the reply size of the partial answer for a fragment
// with the given number of boundary variables (|Fi.O| + |Fi.I|).
func (rv *ReachPartial) WireSize(boundaryVars int) int { return rv.wireSize(boundaryVars) }

// NumEqs reports the number of equations in the partial.
func (rv *ReachPartial) NumEqs() int { return len(rv.eqs) }

// Merge appends o's equations to rv. Duplicate equations are harmless —
// disjunctive systems are idempotent under Add — so merging a streamed
// chunk sequence with the complete final partial stays sound. TouchedReach
// and SolveReach over the merged partial give the same results as over the
// complete one.
func (rv *ReachPartial) Merge(o *ReachPartial) {
	if o != nil {
		rv.eqs = append(rv.eqs, o.eqs...)
	}
}

// AddToSystem feeds the partial's equations into an incremental equation
// system. It is the streaming counterpart of SolveReach: the coordinator
// calls it per received frame and polls sys.Decide(s) instead of
// re-solving from scratch.
func (rv *ReachPartial) AddToSystem(sys *bes.System[graph.NodeID]) {
	if rv == nil {
		return
	}
	for _, eq := range rv.eqs {
		sys.Add(eq.node, eq.constTrue, eq.vars...)
	}
}

// SolveReach is procedure evalDG: it assembles partial answers from all
// fragments and reports whether Xs holds.
func SolveReach(partials []*ReachPartial, s graph.NodeID) bool {
	sys := bes.New[graph.NodeID]()
	for _, rv := range partials {
		if rv == nil {
			continue
		}
		for _, eq := range rv.eqs {
			sys.Add(eq.node, eq.constTrue, eq.vars...)
		}
	}
	sol := sys.Solve()
	return sol[s]
}

// wireSize accounts the reply size. Each equation carries the in-node ID
// plus its disjuncts, encoded as whichever is smaller: a presence bitmap
// over the fragment's boundary variables (the paper's "|Fi.O| bits"
// accounting) or an explicit variable list. Either way the total stays
// within the O(|Vf|²) guarantee.
func (rv *ReachPartial) wireSize(boundaryVars int) int {
	dense := (boundaryVars + 1 + 7) / 8
	n := 0
	for _, eq := range rv.eqs {
		sparse := 4 * len(eq.vars)
		if sparse < dense {
			n += 5 + sparse
		} else {
			n += 5 + dense
		}
	}
	return n
}

// DisReach evaluates the reachability query qr(s, t) over the fragmentation
// fr deployed on cl (algorithm disReach, Fig. 3). It visits each site
// exactly once, ships O(|Vf|²) bits in total, and runs local evaluation on
// all fragments in parallel.
func DisReach(cl *cluster.Cluster, fr *fragment.Fragmentation, s, t graph.NodeID, opt *Options) Result {
	if opt == nil {
		opt = &Options{}
	}
	run := cl.NewRun()
	if s == t {
		// dist(s, s) = 0; no communication needed.
		return Result{Answer: true, Report: run.Finish()}
	}
	frags := fr.Fragments()

	// Phase 1: post qr(s, t) to every site, as is.
	for i := range frags {
		run.Post(i, querySize)
	}
	run.NetPhase(querySize)

	// Phase 2: local evaluation, in parallel at each site.
	partial := make([]*ReachPartial, len(frags))
	run.Parallel(func(site int) {
		partial[site] = localEval(frags[site], s, t, opt)
	})
	maxReply := 0
	for i, rv := range partial {
		b := rv.wireSize(frags[i].NumVirtual() + len(frags[i].InNodes()))
		run.Reply(i, b)
		if b > maxReply {
			maxReply = b
		}
	}
	run.NetPhase(maxReply)

	// Phase 3: assemble at the coordinator — solve the Boolean equation
	// system with evalDG.
	var ans bool
	run.Sequential(func() {
		sys := bes.New[graph.NodeID]()
		for _, rv := range partial {
			for _, eq := range rv.eqs {
				sys.Add(eq.node, eq.constTrue, eq.vars...)
			}
		}
		sol := sys.Solve()
		ans = sol[s]
	})
	return Result{Answer: ans, Report: run.Finish()}
}

// localEval is the per-site partial evaluation of Fig. 3: for every in-node
// v of the fragment (plus s, if s is stored here) it determines which
// boundary nodes v can reach locally, yielding the Boolean equation
// Xv = (t reached locally) ∨ (∨ Xv' over reached boundary nodes v').
// A boundary node equal to t contributes `true` rather than a variable
// (lines 4-5 of the procedure).
//
// The BFS applies a frontier cut: besides virtual nodes, it also stops
// expanding at the fragment's other in-nodes, emitting their variables
// instead. This is sound because every in-node has its own equation in the
// same rvset and the coordinator's equation system composes transitively;
// it keeps both the local work and the reply size near-linear in the
// fragment's boundary structure instead of |Fi.I|·|Fi| in the worst case
// (the paper's O(|Vf||Fm|) bound still applies).
func localEval(f *fragment.Fragment, s, t graph.NodeID, opt *Options) *ReachPartial {
	rv, _ := localEvalStream(f, s, t, opt, nil)
	return rv
}

// localEvalStream is localEval with two anytime hooks: a chunk sink for
// streaming partial frames (nil for the classic one-shot evaluation) and
// the cooperative cancellation checkpoints of opt.Cancel. It returns
// (nil, false) when abandoned.
func localEvalStream(f *fragment.Fragment, s, t graph.NodeID, opt *Options, sink func(*ReachPartial) bool) (*ReachPartial, bool) {
	if opt == nil {
		opt = &Options{}
	}
	iset := isetOf(f, s)
	if sink != nil {
		iset = streamOrder(f, iset, s, t)
	}
	rv := &ReachPartial{eqs: make([]reachEq, 0, len(iset))}
	if len(iset) == 0 {
		return rv, true
	}
	// flush emits the equations appended since the previous chunk. Chunk
	// boundaries grow geometrically (1, 2, 4, ...) so the prioritized
	// head of the evaluation ships with minimum latency while long tails
	// stay within the MaxStreamChunks frame budget.
	emitted, last, next := 0, 0, 1
	flush := func() bool {
		if sink == nil || emitted >= MaxStreamChunks || len(rv.eqs)-last < next {
			return true
		}
		if !sink(&ReachPartial{eqs: rv.eqs[last:]}) {
			return false
		}
		last = len(rv.eqs)
		emitted++
		next *= 2
		return true
	}
	met := opt.Metrics
	if opt.LocalIndex != nil {
		idx := opt.LocalIndex(f)
		tLocal, hasT := f.Local(t)
		for _, v := range iset {
			if opt.cancelled() {
				return nil, false
			}
			eq := reachEq{node: f.Global(v)}
			if eq.node == t {
				// Xt is trivially true (t reaches itself); aliases and
				// other equations may reference it as a variable.
				eq.constTrue = true
				rv.eqs = append(rv.eqs, eq)
				if met != nil {
					met.ConstEqs++
				}
				if !flush() {
					return nil, false
				}
				continue
			}
			if met != nil {
				met.IndexedEqs++
			}
			if hasT && idx.Reaches(graph.NodeID(v), graph.NodeID(tLocal)) {
				eq.constTrue = true
			}
			for _, o := range f.VirtualNodes() {
				if !idx.Reaches(graph.NodeID(v), graph.NodeID(o)) {
					continue
				}
				if g := f.Global(o); g == t {
					eq.constTrue = true
				} else {
					eq.vars = append(eq.vars, f.Global(o))
				}
			}
			rv.eqs = append(rv.eqs, eq)
			if !flush() {
				return nil, false
			}
		}
		return rv, true
	}
	// Equation aliasing: in-nodes in the same local SCC reach exactly the
	// same boundary nodes, so only one representative per SCC needs a full
	// equation; the rest ship the two-word alias Xv = Xrep. This keeps the
	// reply size near the size of the fragment's condensed boundary
	// structure on dense fragmentations.
	comp := f.LocalSCC()
	// repOf maps SCC -> representative in-node, +1-encoded so the zeroed
	// slice means "none yet" (a map here dominates the indexed hot path).
	repOf := make([]int32, f.NumTotal())
	// Fragment reachability index: when one is installed (and not opted
	// out of), a representative's whole equation comes from two lookups —
	// the precomputed frontier-cut variable list and the interval-label
	// "reaches t locally" bit — instead of a BFS. Stale/undecided/over-
	// budget entries answer !ok and drop to the BFS below, so an index
	// mid-rebuild only costs speed, never correctness.
	var idx *reachindex.Index
	var tLocal int32
	var hasT bool
	if !opt.NoFragmentIndex && opt.LocalIndex == nil {
		if idx = f.ReachIndex(); idx != nil {
			tLocal, hasT = f.Local(t)
		}
	}
	// Fallback strategy: one frontier-cut BFS per representative over the
	// fragment-local adjacency. A stamped seen buffer avoids reallocation
	// across in-nodes; it is allocated lazily since a fully indexed
	// evaluation never needs it.
	var seen []int32
	var queue []int32
	for stamp, v := range iset {
		if opt.cancelled() {
			return nil, false
		}
		if f.Global(v) == t {
			// Xt is trivially true (t reaches itself). This must precede
			// aliasing: if t shares an SCC with other in-nodes, they may
			// alias to Xt, and Xt itself must never be an alias.
			rv.eqs = append(rv.eqs, reachEq{node: t, constTrue: true})
			if met != nil {
				met.ConstEqs++
			}
			if !flush() {
				return nil, false
			}
			continue
		}
		if rep := repOf[comp[v]]; rep != 0 {
			rv.eqs = append(rv.eqs, reachEq{node: f.Global(v), vars: []graph.NodeID{f.Global(rep - 1)}})
			if met != nil {
				met.AliasEqs++
			}
			if !flush() {
				return nil, false
			}
			continue
		}
		repOf[comp[v]] = v + 1
		if idx != nil {
			if gvars, reachesT, ok := idx.EquationGlobal(v, tLocal, hasT); ok {
				eq := reachEq{node: f.Global(v), constTrue: reachesT}
				if hasT {
					// t appearing as a variable must contribute `true`
					// instead (lines 4-5 of localEval). The list holds each
					// boundary node at most once, so splice it out.
					for i, gv := range gvars {
						if gv == t {
							eq.constTrue = true
							spliced := make([]graph.NodeID, 0, len(gvars)-1)
							spliced = append(spliced, gvars[:i]...)
							spliced = append(spliced, gvars[i+1:]...)
							gvars = spliced
							break
						}
					}
				}
				// Shared read-only slice: bes.Add and the wire codec only
				// read equation bodies, so no per-query copy is needed.
				eq.vars = gvars
				rv.eqs = append(rv.eqs, eq)
				if met != nil {
					met.IndexedEqs++
				}
				if !flush() {
					return nil, false
				}
				continue
			}
			if met != nil {
				switch idx.Outcome(v) {
				case reachindex.OutcomeStale:
					met.StaleEqs++
				case reachindex.OutcomeOverBudget:
					met.OverBudgetEqs++
				}
			}
		}
		if met != nil {
			met.BFSEqs++
		}
		eq := reachEq{node: f.Global(v)}
		if seen == nil {
			seen = make([]int32, f.NumTotal())
			for i := range seen {
				seen[i] = -1
			}
			queue = make([]int32, 0, f.NumTotal())
		}
		queue = append(queue[:0], v)
		seen[v] = int32(stamp)
		// The fallback BFS is the one potentially long-running stretch of a
		// local evaluation (the reachindex fast path above is two lookups),
		// so it polls the cancel hook every few hundred dequeues.
		pops := 0
		for len(queue) > 0 {
			if pops++; pops&0xff == 0 && opt.cancelled() {
				return nil, false
			}
			x := queue[0]
			queue = queue[1:]
			if x != v { // v itself is never a disjunct of its own equation
				if g := f.Global(x); g == t {
					eq.constTrue = true
					continue // reaching t locally closes this branch
				} else if f.IsBoundary(x) && comp[x] != comp[v] {
					// Stop at boundary nodes outside v's SCC: their own
					// equations continue the search. In-nodes inside v's
					// SCC are aliased to v's equation, so the BFS must
					// expand through them itself.
					eq.vars = append(eq.vars, g)
					continue
				}
			}
			for _, w := range f.Out(x) {
				if seen[w] != int32(stamp) {
					seen[w] = int32(stamp)
					queue = append(queue, w)
				}
			}
		}
		rv.eqs = append(rv.eqs, eq)
		if !flush() {
			return nil, false
		}
	}
	return rv, true
}

// streamOrder biases the evaluation order of a streaming localEval so the
// equations most likely to close a path certificate at the coordinator
// ship first: the source's own equation (the root of every certificate
// chain), then — when t is stored here — the in-nodes sharing t's local
// SCC (their equations carry the constant true that terminates a chain),
// then the remaining in-nodes in stored order. The set is unchanged, only
// the order, so aliasing and the emitted equations stay equivalent to the
// one-shot evaluation.
func streamOrder(f *fragment.Fragment, iset []int32, s, t graph.NodeID) []int32 {
	ls, hasS := f.Local(s)
	if hasS && f.IsVirtual(ls) {
		hasS = false
	}
	lt, hasT := f.Local(t)
	if !hasS && !hasT {
		return iset
	}
	var comp []int32
	if hasT {
		comp = f.LocalSCC()
	}
	out := make([]int32, 0, len(iset))
	rank := func(v int32) int {
		switch {
		case hasS && v == ls:
			return 0
		case hasT && comp[v] == comp[lt]:
			return 1
		default:
			return 2
		}
	}
	for r := 0; r <= 2; r++ {
		for _, v := range iset {
			if rank(v) == r {
				out = append(out, v)
			}
		}
	}
	return out
}

// isetOf returns the fragment's in-nodes plus the source s when s is stored
// locally (lines 1-2 of localEval).
func isetOf(f *fragment.Fragment, s graph.NodeID) []int32 {
	iset := f.InNodes()
	if ls, ok := f.Local(s); ok && !f.IsVirtual(ls) {
		found := false
		for _, v := range iset {
			if v == ls {
				found = true
				break
			}
		}
		if !found {
			iset = append(append([]int32(nil), iset...), ls)
		}
	}
	return iset
}
