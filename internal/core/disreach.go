package core

import (
	"distreach/internal/bes"
	"distreach/internal/cluster"
	"distreach/internal/fragment"
	"distreach/internal/graph"
	"distreach/internal/reachindex"
)

// querySize is the wire size of a posted (bounded) reachability query: two
// node IDs plus a kind/bound word. The paper treats |qr(s,t)| as negligible.
const querySize = 12

// Result is the outcome of one distributed evaluation.
type Result struct {
	Answer bool
	Report cluster.Report
}

// reachEq is one Boolean equation Xv = constTrue ∨ (∨ Xv') produced by
// local evaluation: v is an in-node (or the source s), and the variables on
// the right-hand side are the virtual nodes of the fragment that v reaches
// locally.
type reachEq struct {
	node      graph.NodeID
	constTrue bool
	vars      []graph.NodeID
}

// ReachPartial is Fi.rvset: the partial answer of one fragment to a
// reachability query. It is produced by LocalEvalReach at a site (or a
// mapper) and consumed by SolveReach at the coordinator (or the reducer).
type ReachPartial struct {
	eqs []reachEq
}

// LocalEvalReach is the exported form of procedure localEval, used by the
// MapReduce adaptation, the incremental session and the wire sites. Pass
// s = graph.None to compute the in-node equations only (no source
// equation). A nil opt means defaults; it used to be silently replaced by
// a fresh &Options{}, which dropped every caller-supplied option
// (LocalIndex, NoFragmentIndex) on the MapReduce and session paths.
func LocalEvalReach(f *fragment.Fragment, s, t graph.NodeID, opt *Options) *ReachPartial {
	return localEval(f, s, t, opt)
}

// WireSize reports the reply size of the partial answer for a fragment
// with the given number of boundary variables (|Fi.O| + |Fi.I|).
func (rv *ReachPartial) WireSize(boundaryVars int) int { return rv.wireSize(boundaryVars) }

// SolveReach is procedure evalDG: it assembles partial answers from all
// fragments and reports whether Xs holds.
func SolveReach(partials []*ReachPartial, s graph.NodeID) bool {
	sys := bes.New[graph.NodeID]()
	for _, rv := range partials {
		if rv == nil {
			continue
		}
		for _, eq := range rv.eqs {
			sys.Add(eq.node, eq.constTrue, eq.vars...)
		}
	}
	sol := sys.Solve()
	return sol[s]
}

// wireSize accounts the reply size. Each equation carries the in-node ID
// plus its disjuncts, encoded as whichever is smaller: a presence bitmap
// over the fragment's boundary variables (the paper's "|Fi.O| bits"
// accounting) or an explicit variable list. Either way the total stays
// within the O(|Vf|²) guarantee.
func (rv *ReachPartial) wireSize(boundaryVars int) int {
	dense := (boundaryVars + 1 + 7) / 8
	n := 0
	for _, eq := range rv.eqs {
		sparse := 4 * len(eq.vars)
		if sparse < dense {
			n += 5 + sparse
		} else {
			n += 5 + dense
		}
	}
	return n
}

// DisReach evaluates the reachability query qr(s, t) over the fragmentation
// fr deployed on cl (algorithm disReach, Fig. 3). It visits each site
// exactly once, ships O(|Vf|²) bits in total, and runs local evaluation on
// all fragments in parallel.
func DisReach(cl *cluster.Cluster, fr *fragment.Fragmentation, s, t graph.NodeID, opt *Options) Result {
	if opt == nil {
		opt = &Options{}
	}
	run := cl.NewRun()
	if s == t {
		// dist(s, s) = 0; no communication needed.
		return Result{Answer: true, Report: run.Finish()}
	}
	frags := fr.Fragments()

	// Phase 1: post qr(s, t) to every site, as is.
	for i := range frags {
		run.Post(i, querySize)
	}
	run.NetPhase(querySize)

	// Phase 2: local evaluation, in parallel at each site.
	partial := make([]*ReachPartial, len(frags))
	run.Parallel(func(site int) {
		partial[site] = localEval(frags[site], s, t, opt)
	})
	maxReply := 0
	for i, rv := range partial {
		b := rv.wireSize(frags[i].NumVirtual() + len(frags[i].InNodes()))
		run.Reply(i, b)
		if b > maxReply {
			maxReply = b
		}
	}
	run.NetPhase(maxReply)

	// Phase 3: assemble at the coordinator — solve the Boolean equation
	// system with evalDG.
	var ans bool
	run.Sequential(func() {
		sys := bes.New[graph.NodeID]()
		for _, rv := range partial {
			for _, eq := range rv.eqs {
				sys.Add(eq.node, eq.constTrue, eq.vars...)
			}
		}
		sol := sys.Solve()
		ans = sol[s]
	})
	return Result{Answer: ans, Report: run.Finish()}
}

// localEval is the per-site partial evaluation of Fig. 3: for every in-node
// v of the fragment (plus s, if s is stored here) it determines which
// boundary nodes v can reach locally, yielding the Boolean equation
// Xv = (t reached locally) ∨ (∨ Xv' over reached boundary nodes v').
// A boundary node equal to t contributes `true` rather than a variable
// (lines 4-5 of the procedure).
//
// The BFS applies a frontier cut: besides virtual nodes, it also stops
// expanding at the fragment's other in-nodes, emitting their variables
// instead. This is sound because every in-node has its own equation in the
// same rvset and the coordinator's equation system composes transitively;
// it keeps both the local work and the reply size near-linear in the
// fragment's boundary structure instead of |Fi.I|·|Fi| in the worst case
// (the paper's O(|Vf||Fm|) bound still applies).
func localEval(f *fragment.Fragment, s, t graph.NodeID, opt *Options) *ReachPartial {
	if opt == nil {
		opt = &Options{}
	}
	iset := isetOf(f, s)
	rv := &ReachPartial{eqs: make([]reachEq, 0, len(iset))}
	if len(iset) == 0 {
		return rv
	}
	if opt.LocalIndex != nil {
		idx := opt.LocalIndex(f)
		tLocal, hasT := f.Local(t)
		for _, v := range iset {
			eq := reachEq{node: f.Global(v)}
			if eq.node == t {
				// Xt is trivially true (t reaches itself); aliases and
				// other equations may reference it as a variable.
				eq.constTrue = true
				rv.eqs = append(rv.eqs, eq)
				continue
			}
			if hasT && idx.Reaches(graph.NodeID(v), graph.NodeID(tLocal)) {
				eq.constTrue = true
			}
			for _, o := range f.VirtualNodes() {
				if !idx.Reaches(graph.NodeID(v), graph.NodeID(o)) {
					continue
				}
				if g := f.Global(o); g == t {
					eq.constTrue = true
				} else {
					eq.vars = append(eq.vars, f.Global(o))
				}
			}
			rv.eqs = append(rv.eqs, eq)
		}
		return rv
	}
	// Equation aliasing: in-nodes in the same local SCC reach exactly the
	// same boundary nodes, so only one representative per SCC needs a full
	// equation; the rest ship the two-word alias Xv = Xrep. This keeps the
	// reply size near the size of the fragment's condensed boundary
	// structure on dense fragmentations.
	comp := f.LocalSCC()
	// repOf maps SCC -> representative in-node, +1-encoded so the zeroed
	// slice means "none yet" (a map here dominates the indexed hot path).
	repOf := make([]int32, f.NumTotal())
	// Fragment reachability index: when one is installed (and not opted
	// out of), a representative's whole equation comes from two lookups —
	// the precomputed frontier-cut variable list and the interval-label
	// "reaches t locally" bit — instead of a BFS. Stale/undecided/over-
	// budget entries answer !ok and drop to the BFS below, so an index
	// mid-rebuild only costs speed, never correctness.
	var idx *reachindex.Index
	var tLocal int32
	var hasT bool
	if !opt.NoFragmentIndex && opt.LocalIndex == nil {
		if idx = f.ReachIndex(); idx != nil {
			tLocal, hasT = f.Local(t)
		}
	}
	// Fallback strategy: one frontier-cut BFS per representative over the
	// fragment-local adjacency. A stamped seen buffer avoids reallocation
	// across in-nodes; it is allocated lazily since a fully indexed
	// evaluation never needs it.
	var seen []int32
	var queue []int32
	for stamp, v := range iset {
		if f.Global(v) == t {
			// Xt is trivially true (t reaches itself). This must precede
			// aliasing: if t shares an SCC with other in-nodes, they may
			// alias to Xt, and Xt itself must never be an alias.
			rv.eqs = append(rv.eqs, reachEq{node: t, constTrue: true})
			continue
		}
		if rep := repOf[comp[v]]; rep != 0 {
			rv.eqs = append(rv.eqs, reachEq{node: f.Global(v), vars: []graph.NodeID{f.Global(rep - 1)}})
			continue
		}
		repOf[comp[v]] = v + 1
		if idx != nil {
			if gvars, reachesT, ok := idx.EquationGlobal(v, tLocal, hasT); ok {
				eq := reachEq{node: f.Global(v), constTrue: reachesT}
				if hasT {
					// t appearing as a variable must contribute `true`
					// instead (lines 4-5 of localEval). The list holds each
					// boundary node at most once, so splice it out.
					for i, gv := range gvars {
						if gv == t {
							eq.constTrue = true
							spliced := make([]graph.NodeID, 0, len(gvars)-1)
							spliced = append(spliced, gvars[:i]...)
							spliced = append(spliced, gvars[i+1:]...)
							gvars = spliced
							break
						}
					}
				}
				// Shared read-only slice: bes.Add and the wire codec only
				// read equation bodies, so no per-query copy is needed.
				eq.vars = gvars
				rv.eqs = append(rv.eqs, eq)
				continue
			}
		}
		eq := reachEq{node: f.Global(v)}
		if seen == nil {
			seen = make([]int32, f.NumTotal())
			for i := range seen {
				seen[i] = -1
			}
			queue = make([]int32, 0, f.NumTotal())
		}
		queue = append(queue[:0], v)
		seen[v] = int32(stamp)
		for len(queue) > 0 {
			x := queue[0]
			queue = queue[1:]
			if x != v { // v itself is never a disjunct of its own equation
				if g := f.Global(x); g == t {
					eq.constTrue = true
					continue // reaching t locally closes this branch
				} else if f.IsBoundary(x) && comp[x] != comp[v] {
					// Stop at boundary nodes outside v's SCC: their own
					// equations continue the search. In-nodes inside v's
					// SCC are aliased to v's equation, so the BFS must
					// expand through them itself.
					eq.vars = append(eq.vars, g)
					continue
				}
			}
			for _, w := range f.Out(x) {
				if seen[w] != int32(stamp) {
					seen[w] = int32(stamp)
					queue = append(queue, w)
				}
			}
		}
		rv.eqs = append(rv.eqs, eq)
	}
	return rv
}

// isetOf returns the fragment's in-nodes plus the source s when s is stored
// locally (lines 1-2 of localEval).
func isetOf(f *fragment.Fragment, s graph.NodeID) []int32 {
	iset := f.InNodes()
	if ls, ok := f.Local(s); ok && !f.IsVirtual(ls) {
		found := false
		for _, v := range iset {
			if v == ls {
				found = true
				break
			}
		}
		if !found {
			iset = append(append([]int32(nil), iset...), ls)
		}
	}
	return iset
}
