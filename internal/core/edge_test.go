package core

import (
	"sync"
	"testing"

	"distreach/internal/automaton"
	"distreach/internal/cluster"
	"distreach/internal/fragment"
	"distreach/internal/gen"
	"distreach/internal/graph"
	"distreach/internal/rx"
)

// ringAcrossFragments builds a directed cycle whose nodes alternate between
// k fragments — the worst case for recursive Boolean equations: every node
// is both an in-node and the original of a virtual node, and the equation
// system is one big cycle.
func ringAcrossFragments(t *testing.T, n, k int, labels []string) (*graph.Graph, *fragment.Fragmentation) {
	t.Helper()
	rng := gen.NewRNG(uint64(n * k))
	b := graph.NewBuilder(n)
	assign := make([]int, n)
	for i := 0; i < n; i++ {
		l := ""
		if len(labels) > 0 {
			l = labels[rng.Intn(len(labels))]
		}
		b.AddNode(l)
		assign[i] = i % k
	}
	for i := 0; i < n; i++ {
		b.AddEdge(graph.NodeID(i), graph.NodeID((i+1)%n))
	}
	g := b.MustBuild()
	fr, err := fragment.Build(g, assign, k)
	if err != nil {
		t.Fatal(err)
	}
	return g, fr
}

func TestCycleSpanningAllFragments(t *testing.T) {
	g, fr := ringAcrossFragments(t, 12, 4, nil)
	cl := cluster.New(4, cluster.NetModel{})
	// On a cycle every node reaches every node; distances are (j-i) mod n.
	for i := graph.NodeID(0); i < 12; i++ {
		for j := graph.NodeID(0); j < 12; j++ {
			if !DisReach(cl, fr, i, j, nil).Answer {
				t.Fatalf("cycle: %d should reach %d", i, j)
			}
			want := (int(j) - int(i) + 12) % 12
			res := DisDist(cl, fr, i, j, 12, nil)
			if int(res.Distance) != want {
				t.Fatalf("cycle dist(%d,%d) = %d, want %d", i, j, res.Distance, want)
			}
		}
	}
	_ = g
}

func TestRegularQueryOnCrossFragmentCycle(t *testing.T) {
	// Alternating labels around a ring: A B A B ... — the query (A B)+
	// from an A-node's predecessor wraps around fragments repeatedly.
	b := graph.NewBuilder(8)
	assign := make([]int, 8)
	for i := 0; i < 8; i++ {
		if i%2 == 0 {
			b.AddNode("A")
		} else {
			b.AddNode("B")
		}
		assign[i] = i % 3
	}
	for i := 0; i < 8; i++ {
		b.AddEdge(graph.NodeID(i), graph.NodeID((i+1)%8))
	}
	g := b.MustBuild()
	fr, err := fragment.Build(g, assign, 3)
	if err != nil {
		t.Fatal(err)
	}
	cl := cluster.New(3, cluster.NetModel{})
	for _, c := range []struct {
		expr string
		s, t graph.NodeID
		want bool
	}{
		{"(A B)*", 7, 4, false}, // 7 -> 0(A) 1(B) 2(A) 3(B) -> 4: interior A B A B ✓... wait
		{"A B A B", 7, 4, true}, // exact interior word from 7 to 4
		{"(B A)*", 0, 5, true},  // 0 -> 1(B) 2(A) 3(B) 4(A) -> 5
		{"B+", 0, 2, false},     // interior is node 1 (B)? 0->1->2 interior = {1} = B ✓
	} {
		a := automaton.FromRegex(rx.MustParse(c.expr))
		want := automaton.Eval(g, c.s, c.t, a)
		got := DisRPQ(cl, fr, c.s, c.t, a, nil).Answer
		if got != want {
			t.Fatalf("%s from %d to %d: disRPQ=%v oracle=%v", c.expr, c.s, c.t, got, want)
		}
	}
	// Wrap-around: going all the way around the ring more than once is
	// allowed (paths need not be simple).
	a := automaton.FromRegex(rx.MustParse("(B A)* B (A B)* "))
	if got, want := DisRPQ(cl, fr, 0, 0, a, nil).Answer, automaton.Eval(g, 0, 0, a); got != want {
		t.Fatalf("wrap-around: disRPQ=%v oracle=%v", got, want)
	}
}

func TestEndpointsOnBoundary(t *testing.T) {
	// s and t chosen as in-nodes / virtual-node originals.
	g, fr := ringAcrossFragments(t, 9, 3, nil)
	cl := cluster.New(3, cluster.NetModel{})
	// Every node in this ring is a boundary node by construction.
	for _, f := range fr.Fragments() {
		if len(f.InNodes()) != f.NumLocal() {
			t.Fatalf("expected all nodes to be in-nodes, fragment %d has %d/%d",
				f.ID, len(f.InNodes()), f.NumLocal())
		}
	}
	if !DisReach(cl, fr, 0, 8, nil).Answer {
		t.Fatal("boundary endpoints failed")
	}
	if d := DisDist(cl, fr, 0, 8, 9, nil); d.Distance != 8 {
		t.Fatalf("boundary dist = %d, want 8", d.Distance)
	}
	_ = g
}

func TestSingleNodeAndTinyGraphs(t *testing.T) {
	b := graph.NewBuilder(1)
	b.AddNode("X")
	g := b.MustBuild()
	fr, err := fragment.Build(g, []int{0}, 1)
	if err != nil {
		t.Fatal(err)
	}
	cl := cluster.New(1, cluster.NetModel{})
	if !DisReach(cl, fr, 0, 0, nil).Answer {
		t.Fatal("self reachability")
	}
	if res := DisDist(cl, fr, 0, 0, 0, nil); !res.Answer || res.Distance != 0 {
		t.Fatal("self distance")
	}
	// s == t regular reachability: ε membership decides.
	if !DisRPQ(cl, fr, 0, 0, automaton.FromRegex(rx.MustParse("X*")), nil).Answer {
		t.Fatal("nullable self query")
	}
	if DisRPQ(cl, fr, 0, 0, automaton.FromRegex(rx.MustParse("X+")), nil).Answer {
		t.Fatal("non-nullable self query on an acyclic single node")
	}
}

func TestSelfLoopRegularSelfQuery(t *testing.T) {
	// With a self-loop, qrr(v, v, X+) holds via the non-empty cycle.
	b := graph.NewBuilder(1)
	b.AddNode("X")
	b.AddEdge(0, 0)
	g := b.MustBuild()
	fr, err := fragment.Build(g, []int{0}, 1)
	if err != nil {
		t.Fatal(err)
	}
	cl := cluster.New(1, cluster.NetModel{})
	a := automaton.FromRegex(rx.MustParse("X+"))
	if got, want := DisRPQ(cl, fr, 0, 0, a, nil).Answer, automaton.Eval(g, 0, 0, a); got != want {
		t.Fatalf("self loop X+: disRPQ=%v oracle=%v", got, want)
	}
}

func TestEmptyFragmentsTolerated(t *testing.T) {
	// More fragments than nodes: some sites hold nothing and must still
	// answer (with empty rvsets).
	g := gen.Uniform(gen.Config{Nodes: 5, Edges: 10, Seed: 3})
	fr, err := fragment.Random(g, 9, 3)
	if err != nil {
		t.Fatal(err)
	}
	cl := cluster.New(9, cluster.NetModel{})
	for i := graph.NodeID(0); i < 5; i++ {
		for j := graph.NodeID(0); j < 5; j++ {
			if got, want := DisReach(cl, fr, i, j, nil).Answer, g.Reachable(i, j); got != want {
				t.Fatalf("(%d,%d): %v want %v", i, j, got, want)
			}
		}
	}
}

func TestConcurrentQueriesShareFragmentation(t *testing.T) {
	g := gen.PowerLaw(gen.Config{Nodes: 500, Edges: 2000, Labels: gen.LabelAlphabet(3), LabelSkew: 1, Seed: 4})
	fr, err := fragment.Random(g, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	cl := cluster.New(4, cluster.NetModel{})
	a := automaton.FromRegex(rx.MustParse("L0 (L1|L2)*"))
	var wg sync.WaitGroup
	errs := make(chan string, 64)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			rng := gen.NewRNG(seed)
			for q := 0; q < 20; q++ {
				s := graph.NodeID(rng.Intn(500))
				tt := graph.NodeID(rng.Intn(500))
				if DisReach(cl, fr, s, tt, nil).Answer != g.Reachable(s, tt) {
					errs <- "reach mismatch under concurrency"
					return
				}
				if DisRPQ(cl, fr, s, tt, a, nil).Answer != automaton.Eval(g, s, tt, a) {
					errs <- "rpq mismatch under concurrency"
					return
				}
			}
		}(uint64(w))
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
}

func TestDistBoundEdges(t *testing.T) {
	// dist exactly equals the bound; bound 0 with s != t; negative bound.
	g := gen.Chain([]string{"A"}, 6)
	fr, err := fragment.Contiguous(g, 3)
	if err != nil {
		t.Fatal(err)
	}
	cl := cluster.New(3, cluster.NetModel{})
	if res := DisDist(cl, fr, 0, 5, 5, nil); !res.Answer || res.Distance != 5 {
		t.Fatalf("exact bound: %+v", res)
	}
	if res := DisDist(cl, fr, 0, 5, 4, nil); res.Answer {
		t.Fatal("bound one short must fail")
	}
	if res := DisDist(cl, fr, 0, 1, 0, nil); res.Answer {
		t.Fatal("bound 0 with s != t must fail")
	}
	if res := DisDist(cl, fr, 0, 1, -3, nil); res.Answer {
		t.Fatal("negative bound must fail")
	}
}
