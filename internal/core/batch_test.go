package core

import (
	"testing"
	"testing/quick"

	"distreach/internal/cluster"
	"distreach/internal/fragment"
	"distreach/internal/gen"
	"distreach/internal/graph"
)

func TestBatchMatchesSingleQueries(t *testing.T) {
	rng := gen.NewRNG(61)
	for trial := 0; trial < 80; trial++ {
		g, fr, _, _ := randomCase(rng, nil)
		cl := cluster.New(fr.Card(), cluster.NetModel{})
		m := 1 + rng.Intn(12)
		qs := make([]Query, m)
		for i := range qs {
			qs[i] = Query{
				S: graph.NodeID(rng.Intn(g.NumNodes())),
				// Few distinct targets so grouping is exercised.
				T: graph.NodeID(rng.Intn(min(3, g.NumNodes()))),
			}
		}
		res := DisReachBatch(cl, fr, qs)
		for i, q := range qs {
			if want := g.Reachable(q.S, q.T); res.Answers[i] != want {
				t.Fatalf("trial %d query %d (%d->%d): batch=%v oracle=%v",
					trial, i, q.S, q.T, res.Answers[i], want)
			}
		}
		// One visit per site for the whole batch.
		for site, v := range res.Report.Visits {
			if v != 1 {
				t.Fatalf("trial %d: site %d visited %d times for the batch", trial, site, v)
			}
		}
	}
}

func TestBatchEmpty(t *testing.T) {
	g := gen.Uniform(gen.Config{Nodes: 5, Edges: 10, Seed: 62})
	fr, err := fragment.Random(g, 2, 62)
	if err != nil {
		t.Fatal(err)
	}
	cl := cluster.New(2, cluster.NetModel{})
	res := DisReachBatch(cl, fr, nil)
	if len(res.Answers) != 0 || res.Report.TotalVisits != 0 {
		t.Fatalf("empty batch did work: %+v", res.Report)
	}
}

// TestQuickDisReach drives disReach with testing/quick: arbitrary seeds
// define the instance, and the distributed answer must equal centralized
// BFS for every endpoint pair probed.
func TestQuickDisReach(t *testing.T) {
	check := func(seed uint64, sRaw, tRaw uint8, k uint8) bool {
		rng := gen.NewRNG(seed)
		n := 2 + rng.Intn(30)
		g := gen.Uniform(gen.Config{Nodes: n, Edges: rng.Intn(3 * n), Seed: seed})
		fr, err := fragment.Random(g, 1+int(k%6), seed)
		if err != nil {
			return false
		}
		s := graph.NodeID(int(sRaw) % n)
		tt := graph.NodeID(int(tRaw) % n)
		cl := cluster.New(fr.Card(), cluster.NetModel{})
		return DisReach(cl, fr, s, tt, nil).Answer == g.Reachable(s, tt)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestSharedTargetSplitMatchesSingle checks the per-target split the wire
// batch reply ships deduplicated: for random fragmented graphs, composing
// each fragment's source-independent rvset (LocalEvalReach with s = None)
// with the per-source equation (SourceOnlyReach) must solve to the same
// answer as the per-query partials — and both must match the centralized
// oracle.
func TestSharedTargetSplitMatchesSingle(t *testing.T) {
	rng := gen.NewRNG(63)
	for trial := 0; trial < 60; trial++ {
		n := 5 + rng.Intn(40)
		g := gen.Uniform(gen.Config{Nodes: n, Edges: rng.Intn(4 * n), Seed: uint64(trial)})
		fr, err := fragment.Random(g, 1+rng.Intn(4), uint64(trial))
		if err != nil {
			t.Fatal(err)
		}
		frags := fr.Fragments()
		tt := graph.NodeID(rng.Intn(n))
		bases := make([]*ReachPartial, len(frags))
		for fi, f := range frags {
			bases[fi] = LocalEvalReach(f, graph.None, tt, nil)
		}
		m := 1 + rng.Intn(6)
		for qi := 0; qi < m; qi++ {
			s := graph.NodeID(rng.Intn(n))
			splitParts := make([]*ReachPartial, 0, 2*len(frags))
			singleParts := make([]*ReachPartial, len(frags))
			for fi, f := range frags {
				splitParts = append(splitParts, bases[fi], SourceOnlyReach(f, s, tt, nil))
				singleParts[fi] = LocalEvalReach(f, s, tt, nil)
			}
			got := s == tt || SolveReach(splitParts, s)
			single := s == tt || SolveReach(singleParts, s)
			want := g.Reachable(s, tt)
			if got != want || single != want {
				t.Fatalf("trial %d: qr(%d,%d) split=%v single=%v oracle=%v",
					trial, s, tt, got, single, want)
			}
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
