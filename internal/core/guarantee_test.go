package core

import (
	"testing"

	"distreach/internal/automaton"
	"distreach/internal/cluster"
	"distreach/internal/fragment"
	"distreach/internal/gen"
	"distreach/internal/graph"
	"distreach/internal/rx"
)

// bridgeFragmentation builds two fragments joined by one cross edge, with
// `interior` label-L nodes hanging inside each fragment. |Vf| stays fixed
// while |G| grows with interior.
func bridgeFragmentation(t *testing.T, interior int, label string) (*fragment.Fragmentation, graph.NodeID, graph.NodeID) {
	t.Helper()
	b := graph.NewBuilder(2 + 2*interior)
	s := b.AddNode(label)
	u := b.AddNode(label)
	b.AddEdge(s, u)
	assign := []int{0, 1}
	for i := 0; i < interior; i++ {
		v := b.AddNode(label)
		b.AddEdge(s, v)
		b.AddEdge(v, s)
		assign = append(assign, 0)
	}
	var last = u
	for i := 0; i < interior; i++ {
		v := b.AddNode(label)
		b.AddEdge(last, v)
		assign = append(assign, 1)
		last = v
	}
	g := b.MustBuild()
	fr, err := fragment.Build(g, assign, 2)
	if err != nil {
		t.Fatal(err)
	}
	return fr, s, last
}

// TestDistTrafficIndependentOfGraphSize pins guarantee (2) for disDist.
func TestDistTrafficIndependentOfGraphSize(t *testing.T) {
	frS, s1, t1 := bridgeFragmentation(t, 4, "")
	frL, s2, t2 := bridgeFragmentation(t, 400, "")
	cl := cluster.New(2, cluster.NetModel{})
	// Bound below the chain length so pruning keeps messages small and
	// equal: the cross structure is identical in both instances.
	small := DisDist(cl, frS, s1, t1, 3, nil).Report
	large := DisDist(cl, frL, s2, t2, 3, nil).Report
	if small.Bytes != large.Bytes {
		t.Fatalf("disDist traffic grew with |G|: %d -> %d bytes", small.Bytes, large.Bytes)
	}
}

// TestRPQTrafficIndependentOfGraphSize pins guarantee (2) for disRPQ: with
// a label that excludes the interior nodes from the query automaton, the
// reply depends only on the boundary.
func TestRPQTrafficIndependentOfGraphSize(t *testing.T) {
	frS, s1, t1 := bridgeFragmentation(t, 4, "Z")
	frL, s2, t2 := bridgeFragmentation(t, 400, "Z")
	cl := cluster.New(2, cluster.NetModel{})
	a := automaton.FromRegex(rx.MustParse("A*")) // never matches label Z
	small := DisRPQ(cl, frS, s1, t1, a, nil).Report
	large := DisRPQ(cl, frL, s2, t2, a, nil).Report
	if small.Bytes != large.Bytes {
		t.Fatalf("disRPQ traffic grew with |G|: %d -> %d bytes", small.Bytes, large.Bytes)
	}
}

// TestVisitGuaranteeUnderEveryPartitioner verifies that one-visit-per-site
// holds no matter how the graph is fragmented (the paper imposes no
// constraints on fragmentation).
func TestVisitGuaranteeUnderEveryPartitioner(t *testing.T) {
	g := gen.PowerLaw(gen.Config{Nodes: 300, Edges: 1200, Labels: gen.LabelAlphabet(3), LabelSkew: 1, Seed: 6})
	partitioners := map[string]func() (*fragment.Fragmentation, error){
		"random":     func() (*fragment.Fragmentation, error) { return fragment.Random(g, 5, 1) },
		"hash":       func() (*fragment.Fragmentation, error) { return fragment.Hash(g, 5) },
		"contiguous": func() (*fragment.Fragmentation, error) { return fragment.Contiguous(g, 5) },
		"greedy":     func() (*fragment.Fragmentation, error) { return fragment.Greedy(g, 5, 1) },
	}
	a := automaton.FromRegex(rx.MustParse("L0 (L1|L2)*"))
	for name, build := range partitioners {
		fr, err := build()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		cl := cluster.New(5, cluster.NetModel{})
		reports := []cluster.Report{
			DisReach(cl, fr, 0, 299, nil).Report,
			DisDist(cl, fr, 0, 299, 7, nil).Report,
			DisRPQ(cl, fr, 0, 299, a, nil).Report,
		}
		for i, rep := range reports {
			if rep.MaxVisits != 1 {
				t.Fatalf("%s algo %d: max visits %d", name, i, rep.MaxVisits)
			}
			if rep.TotalVisits != 5 {
				t.Fatalf("%s algo %d: total visits %d, want 5", name, i, rep.TotalVisits)
			}
		}
	}
}

// TestRPQWireBoundHolds checks the O(|R|²·|Vf|²) reply bound on random
// instances: the measured reply bytes never exceed the analytic bound.
func TestRPQWireBoundHolds(t *testing.T) {
	rng := gen.NewRNG(17)
	labels := []string{"A", "B", "C"}
	for trial := 0; trial < 60; trial++ {
		g, fr, s, tt := randomCase(rng, labels)
		a := automaton.Random(rng, 2+rng.Intn(6), 4+rng.Intn(10), labels)
		nq := a.NumStates()
		for _, f := range fr.Fragments() {
			rv := LocalEvalRPQ(f, s, tt, a)
			boundary := f.NumVirtual() + len(f.InNodes())
			// Per entry at most 3 + (vars+1+7)/8 dense bytes; entries per
			// in-node at most nq; plus 4 bytes per in-node header.
			perEntry := 3 + (boundary*nq+1+7)/8
			bound := (len(f.InNodes()) + 1) * (4 + nq*perEntry)
			if got := rv.WireSize(); got > bound {
				t.Fatalf("trial %d: wire %d exceeds bound %d (|I|=%d |O|=%d nq=%d)",
					trial, got, bound, len(f.InNodes()), f.NumVirtual(), nq)
			}
		}
		_ = g
	}
}

// TestDisReachAliasCompression verifies the SCC-alias optimization kicks in
// on a fragment whose in-nodes share one big cycle.
func TestDisReachAliasCompression(t *testing.T) {
	// One ring per fragment plus cross edges between rings: all in-nodes of
	// a fragment share an SCC.
	b := graph.NewBuilder(40)
	assign := make([]int, 40)
	for i := 0; i < 40; i++ {
		b.AddNode("")
		assign[i] = i / 20
	}
	for f := 0; f < 2; f++ {
		base := f * 20
		for i := 0; i < 20; i++ {
			b.AddEdge(graph.NodeID(base+i), graph.NodeID(base+(i+1)%20))
		}
	}
	// Several cross edges each way.
	for i := 0; i < 6; i++ {
		b.AddEdge(graph.NodeID(i), graph.NodeID(20+i))
		b.AddEdge(graph.NodeID(20+10+i), graph.NodeID(10+i))
	}
	g := b.MustBuild()
	fr, err := fragment.Build(g, assign, 2)
	if err != nil {
		t.Fatal(err)
	}
	f := fr.Fragments()[0]
	rv := localEval(f, graph.None, 39, &Options{})
	full, alias := 0, 0
	for _, eq := range rv.eqs {
		if len(eq.vars) == 1 && !eq.constTrue {
			alias++
		} else {
			full++
		}
	}
	if alias == 0 {
		t.Fatalf("expected aliased equations on a ring fragment (full=%d alias=%d)", full, alias)
	}
	// And the answers stay exact.
	cl := cluster.New(2, cluster.NetModel{})
	for i := graph.NodeID(0); i < 40; i++ {
		for j := graph.NodeID(0); j < 40; j += 7 {
			if got, want := DisReach(cl, fr, i, j, nil).Answer, g.Reachable(i, j); got != want {
				t.Fatalf("(%d,%d): %v want %v", i, j, got, want)
			}
		}
	}
}
