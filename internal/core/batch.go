package core

import (
	"distreach/internal/bes"
	"distreach/internal/cluster"
	"distreach/internal/fragment"
	"distreach/internal/graph"
)

// Query is one reachability query endpoint pair for batch evaluation.
type Query struct {
	S, T graph.NodeID
}

// BatchResult is the outcome of a batched evaluation.
type BatchResult struct {
	Answers []bool
	Report  cluster.Report
}

// DisReachBatch evaluates a batch of reachability queries in a single
// round: the coordinator posts the whole batch at once, each site runs
// local evaluation for every query in parallel, and one reply per site
// carries all partial answers. The visit guarantee strengthens to one
// visit per site *per batch*: m queries cost the same number of site
// visits as one.
//
// Queries sharing a target t additionally share their in-node equations
// (they are independent of the source), so the per-site work for a batch
// of m queries against d distinct targets is the work of d single queries
// plus m source equations.
func DisReachBatch(cl *cluster.Cluster, fr *fragment.Fragmentation, qs []Query) BatchResult {
	run := cl.NewRun()
	res := BatchResult{Answers: make([]bool, len(qs))}
	if len(qs) == 0 {
		res.Report = run.Finish()
		return res
	}
	frags := fr.Fragments()

	// Group queries by target; equal (s,t) pairs still solve individually
	// (cheap), but local evaluation runs once per (fragment, target).
	type group struct {
		t       graph.NodeID
		sources []graph.NodeID
		indexes []int
	}
	groups := map[graph.NodeID]*group{}
	var order []*group
	for i, q := range qs {
		gr, ok := groups[q.T]
		if !ok {
			gr = &group{t: q.T}
			groups[q.T] = gr
			order = append(order, gr)
		}
		gr.sources = append(gr.sources, q.S)
		gr.indexes = append(gr.indexes, i)
	}

	// Phase 1: post the whole batch to every site.
	batchBytes := querySize * len(qs)
	for i := range frags {
		run.Post(i, batchBytes)
	}
	run.NetPhase(batchBytes)

	// Phase 2: per site, one rvset per target group plus the source
	// equations of every query whose source lives there.
	type sitePartial struct {
		byTarget map[graph.NodeID]*ReachPartial
	}
	partials := make([]sitePartial, len(frags))
	run.Parallel(func(site int) {
		f := frags[site]
		sp := sitePartial{byTarget: make(map[graph.NodeID]*ReachPartial, len(order))}
		for _, gr := range order {
			// Include every source stored at this site in the iset: the
			// in-node pass runs once (s = None) and each source adds only
			// its own equation.
			rv := LocalEvalReach(f, graph.None, gr.t, nil)
			for _, s := range gr.sources {
				if eq, ok := sourceEq(f, s, gr.t, nil); ok {
					rv.eqs = append(rv.eqs, eq)
				}
			}
			sp.byTarget[gr.t] = rv
		}
		partials[site] = sp
	})
	maxReply := 0
	for i := range frags {
		b := 0
		for _, rv := range partials[i].byTarget {
			b += rv.wireSize(frags[i].NumVirtual() + len(frags[i].InNodes()))
		}
		run.Reply(i, b)
		if b > maxReply {
			maxReply = b
		}
	}
	run.NetPhase(maxReply)

	// Phase 3: one equation system per target group.
	run.Sequential(func() {
		for _, gr := range order {
			sys := bes.New[graph.NodeID]()
			for site := range frags {
				rv := partials[site].byTarget[gr.t]
				for _, eq := range rv.eqs {
					sys.Add(eq.node, eq.constTrue, eq.vars...)
				}
			}
			sol := sys.Solve()
			for j, s := range gr.sources {
				res.Answers[gr.indexes[j]] = s == gr.t || sol[s]
			}
		}
	})
	res.Report = run.Finish()
	return res
}

// sourceEq computes just the source equation of qr(s, t) on f: the
// frontier-cut BFS of localEval run from s alone, skipping the per-in-node
// work. It reports false when s contributes no equation of its own — not
// stored on this fragment, stored only as a virtual node, or already an
// in-node (whose equation is part of the source-independent rvset).
func sourceEq(f *fragment.Fragment, s, t graph.NodeID, opt *Options) (reachEq, bool) {
	ls, ok := f.Local(s)
	if !ok || f.IsVirtual(ls) || f.IsInNode(ls) {
		return reachEq{}, false
	}
	if s == t {
		return reachEq{node: t, constTrue: true}, true
	}
	comp := f.LocalSCC()
	// Equation aliasing, as in localEval: when s shares a local SCC with an
	// in-node, the two reach exactly the same boundary nodes, so the
	// two-word alias Xs = Xv replaces a full BFS equation. The in-node's
	// own equation is always in the source-independent rvset.
	for _, v := range f.InNodes() {
		if comp[v] == comp[ls] {
			return reachEq{node: s, vars: []graph.NodeID{f.Global(v)}}, true
		}
	}
	eq := reachEq{node: s}
	seen := make([]bool, f.NumTotal())
	seen[ls] = true
	queue := make([]int32, 1, 16)
	queue[0] = ls
	pops := 0
	for len(queue) > 0 {
		if pops++; pops&0xff == 0 && opt.cancelled() {
			return reachEq{}, false
		}
		x := queue[0]
		queue = queue[1:]
		if x != ls {
			if g := f.Global(x); g == t {
				eq.constTrue = true
				continue
			} else if f.IsBoundary(x) && comp[x] != comp[ls] {
				eq.vars = append(eq.vars, g)
				continue
			}
		}
		for _, w := range f.Out(x) {
			if !seen[w] {
				seen[w] = true
				queue = append(queue, w)
			}
		}
	}
	return eq, true
}

// SourceOnlyReach returns a partial holding just the source equation of
// qr(s, t) on f, or nil when s contributes no equation of its own (not
// stored here, stored only as a virtual node, or already an in-node whose
// equation belongs to the source-independent rvset). Together with
// LocalEvalReach(f, graph.None, t) it splits a fragment's batch answer
// into a per-target shared part and a per-source part, which the wire
// batch reply ships deduplicated.
//
// nil is also returned when opt.Cancel fires mid-BFS; callers running
// under cooperative cancellation must re-check their cancel flag before
// treating nil as "no equation owed".
func SourceOnlyReach(f *fragment.Fragment, s, t graph.NodeID, opt *Options) *ReachPartial {
	eq, ok := sourceEq(f, s, t, opt)
	if !ok {
		return nil
	}
	return &ReachPartial{eqs: []reachEq{eq}}
}
