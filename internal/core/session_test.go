package core

import (
	"testing"

	"distreach/internal/cluster"
	"distreach/internal/fragment"
	"distreach/internal/gen"
	"distreach/internal/graph"
)

func TestSessionMatchesDisReach(t *testing.T) {
	rng := gen.NewRNG(31)
	for trial := 0; trial < 60; trial++ {
		g, fr, _, _ := randomCase(rng, nil)
		cl := cluster.New(fr.Card(), cluster.NetModel{})
		se := NewSession(cl, fr)
		// Many sources against a few targets exercises both the cold and
		// warm paths.
		for q := 0; q < 12; q++ {
			s := graph.NodeID(rng.Intn(g.NumNodes()))
			tt := graph.NodeID(rng.Intn(2)) // few targets -> cache hits
			got := se.Reach(s, tt).Answer
			if want := g.Reachable(s, tt); got != want {
				t.Fatalf("trial %d query %d: session=%v oracle=%v (s=%d t=%d %v %v)",
					trial, q, got, want, s, tt, g, fr)
			}
		}
	}
}

func TestSessionWarmQueriesVisitOneSite(t *testing.T) {
	g := gen.Uniform(gen.Config{Nodes: 200, Edges: 800, Seed: 8})
	fr, err := fragment.Random(g, 4, 8)
	if err != nil {
		t.Fatal(err)
	}
	cl := cluster.New(4, cluster.NetModel{})
	se := NewSession(cl, fr)
	const target = graph.NodeID(7)
	cold := se.Reach(0, target)
	if cold.Report.TotalVisits != 4 && cold.Report.TotalVisits != 5 {
		t.Fatalf("cold query visits = %d, want 4 (+1 if source not an in-node)", cold.Report.TotalVisits)
	}
	for s := graph.NodeID(1); s < 40; s++ {
		rep := se.Reach(s, target).Report
		if rep.TotalVisits > 1 {
			t.Fatalf("warm query for s=%d visited %d sites, want <= 1", s, rep.TotalVisits)
		}
	}
	if se.CachedTargets() != 1 {
		t.Fatalf("cached targets = %d", se.CachedTargets())
	}
}

func TestSessionInvalidateRefreshesFragment(t *testing.T) {
	g := gen.Uniform(gen.Config{Nodes: 100, Edges: 400, Seed: 9})
	fr, err := fragment.Random(g, 3, 9)
	if err != nil {
		t.Fatal(err)
	}
	cl := cluster.New(3, cluster.NetModel{})
	se := NewSession(cl, fr)
	const target = graph.NodeID(42)
	se.Reach(0, target)
	se.Invalidate(1)
	// The next query must revisit fragment 1 (and possibly the source
	// site) and still be correct for every source.
	rep := se.Reach(5, target)
	if want := g.Reachable(5, target); rep.Answer != want {
		t.Fatalf("after invalidate: %v, want %v", rep.Answer, want)
	}
	if rep.Report.Visits[1] != 1 {
		t.Fatalf("invalidated fragment not revisited: %v", rep.Report.Visits)
	}
	for s := graph.NodeID(0); s < 30; s++ {
		if got, want := se.Reach(s, target).Answer, g.Reachable(s, target); got != want {
			t.Fatalf("s=%d: %v want %v", s, got, want)
		}
	}
}

// TestSessionLiveUpdates drives the in-process twin of the wire update
// path: edge inserts/deletes through the Session mutate the fragmentation
// and invalidate exactly the dirtied fragments' cached rvsets, so warm
// queries stay correct against the mutated graph.
func TestSessionLiveUpdates(t *testing.T) {
	rng := gen.NewRNG(33)
	for trial := 0; trial < 20; trial++ {
		n := 20 + rng.Intn(60)
		g := gen.Uniform(gen.Config{Nodes: n, Edges: n + rng.Intn(3*n), Seed: uint64(500 + trial)})
		k := 1 + rng.Intn(4)
		fr, err := fragment.Random(g, k, uint64(trial))
		if err != nil {
			t.Fatal(err)
		}
		cl := cluster.New(k, cluster.NetModel{})
		se := NewSession(cl, fr)
		targets := []graph.NodeID{graph.NodeID(rng.Intn(n)), graph.NodeID(rng.Intn(n))}
		// Warm the per-target rvset caches.
		for _, tt := range targets {
			se.Reach(graph.NodeID(rng.Intn(n)), tt)
		}
		for step := 0; step < 10; step++ {
			u := graph.NodeID(rng.Intn(n))
			v := graph.NodeID(rng.Intn(n))
			var err error
			if rng.Intn(2) == 0 {
				_, _, err = se.InsertEdge(u, v)
			} else {
				_, _, err = se.DeleteEdge(u, v)
			}
			if err != nil {
				t.Fatalf("trial %d step %d: %v", trial, step, err)
			}
			for _, tt := range targets {
				s := graph.NodeID(rng.Intn(n))
				if got, want := se.Reach(s, tt).Answer, g.Reachable(s, tt); got != want {
					t.Fatalf("trial %d step %d: qr(%d,%d) session=%v oracle=%v",
						trial, step, s, tt, got, want)
				}
			}
		}
	}
}
