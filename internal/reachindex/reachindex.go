// Package reachindex implements a budgeted per-fragment reachability
// index over the fragment's condensation DAG, in the spirit of Seufert et
// al., "High-Performance Reachability Query Processing under Index Size
// Restrictions" (PAPERS.md): interval/tree labels answer "u reaches v
// locally" in O(log labels), and a per-in-node-SCC precomputed frontier
// cut turns the whole local evaluation of a reachability query into table
// lookups. Everything is computed under one global byte budget; whatever
// does not fit stays undecided and falls back to direct evaluation.
//
// The index stores three things, all over the SCC condensation of the
// fragment-local graph (slots are the fragment's local indices):
//
//   - a DFS spanning forest of the condensation with postorder numbers:
//     each SCC's own subtree is one interval [low, post];
//   - per-SCC merged interval labels: label(c) covers exactly the
//     postorder numbers of the SCCs reachable from c (own subtree plus
//     the union of the successors' labels, coalesced). Membership of
//     post(d) in label(c) decides c ⇝ d;
//   - per-source-SCC frontier lists: for each in-node SCC, the boundary
//     slots its frontier-cut BFS would emit — the exact variable list of
//     the Boolean equation core.localEval produces, which is target-
//     independent (the target only flips the constTrue bit, and that is
//     what the interval labels answer). This is what lets a query skip
//     the per-in-node BFS entirely.
//
// Incremental maintenance is staleness-based: MarkDirty(u) marks the
// ancestor cone of u's SCC stale (exactly the sources whose reachable
// set, hence equation, may have changed); stale SCCs answer !ok and the
// caller falls back to direct evaluation until an asynchronous rebuild
// installs a fresh index — the same swap-while-serving discipline the
// rebalance ('R') path uses. Building is parallel across source SCCs
// (the frontier BFS dominates build cost on boundary-heavy fragments),
// per the parallel-reachability direction of Jambulapati et al.
//
// Concurrency contract: MarkDirty must run while the caller excludes
// readers (the Fragmentation write lock); Equation/Reaches may run
// concurrently with each other under the matching read lock. The counters
// are atomic and may be read at any time.
package reachindex

import (
	"encoding/binary"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"distreach/internal/graph"
)

// DefaultBudget is the per-fragment label budget in bytes. Labels plus
// frontier lists beyond it stay undecided and fall back to direct
// evaluation.
const DefaultBudget = 4 << 20

// Spec is the input to Build.
type Spec struct {
	// Graph is the fragment-local graph (slots as node IDs) the index is
	// computed over; Comp/NC its SCC decomposition (as from LocalSCC).
	Graph *graph.Graph
	Comp  []int32
	NC    int
	// Boundary reports whether a slot is a boundary node (virtual node or
	// in-node) — where the frontier-cut BFS stops. Nil disables frontier
	// precomputation (labels only).
	Boundary func(l int32) bool
	// Sources are the slots (in-nodes) whose SCCs get precomputed
	// frontier lists.
	Sources []int32
	// Budget caps label + frontier bytes; <= 0 means DefaultBudget.
	Budget int64
}

// Index is one fragment's reachability index. See the package comment for
// the structure and the concurrency contract.
type Index struct {
	n  int // slot count at build time; later slots are undecided
	nc int

	comp      []int32   // build-time SCC of every slot
	dagIn     [][]int32 // deduplicated reverse condensation adjacency
	post      []int32   // DFS-forest postorder number per SCC
	ivals     []int32   // flattened [lo,hi] interval pairs, all SCCs
	ivOff     []int32   // per-SCC offsets into ivals (len nc+1)
	undecided []bool    // label over budget (or transitively undecided)
	fronts    [][]int32 // per-SCC frontier slot lists; nil = not stored
	// gfronts mirrors fronts with the slots mapped to global node IDs
	// (PrecomputeGlobals); EquationGlobal hands these out by reference so
	// the hot path never copies or re-maps a variable list.
	gfronts [][]graph.NodeID
	bytes   int64

	stale    []bool // mutated via MarkDirty under the external write lock
	anyStale atomic.Bool

	hits, fallbacks atomic.Int64
}

// Build computes the index. It reads spec.Graph but retains nothing from
// it; the returned index is immutable except for staleness and counters.
func Build(spec Spec) *Index {
	g, comp, nc := spec.Graph, spec.Comp, spec.NC
	n := g.NumNodes()
	budget := spec.Budget
	if budget <= 0 {
		budget = DefaultBudget
	}
	ix := &Index{
		n:         n,
		nc:        nc,
		comp:      append([]int32(nil), comp...),
		undecided: make([]bool, nc),
		stale:     make([]bool, nc),
		fronts:    make([][]int32, nc),
	}

	// Deduplicated condensation DAG, both directions: forward for the DFS
	// forest and label propagation, reverse for MarkDirty's ancestor walk.
	dagOut := make([][]int32, nc)
	ix.dagIn = make([][]int32, nc)
	seenEdge := make(map[int64]struct{})
	for u := 0; u < n; u++ {
		if g.Deleted(graph.NodeID(u)) {
			continue
		}
		cu := comp[u]
		for _, w := range g.Out(graph.NodeID(u)) {
			cw := comp[w]
			if cu == cw {
				continue
			}
			key := int64(cu)<<32 | int64(uint32(cw))
			if _, dup := seenEdge[key]; dup {
				continue
			}
			seenEdge[key] = struct{}{}
			dagOut[cu] = append(dagOut[cu], cw)
			ix.dagIn[cw] = append(ix.dagIn[cw], cu)
		}
	}

	// DFS spanning forest with postorder numbers and subtree sizes. In a
	// DAG every edge (c,d) satisfies post[d] < post[c] (d finishes first),
	// so increasing postorder is a successors-first processing order and
	// each SCC's tree subtree is the contiguous block [post-size+1, post].
	post := make([]int32, nc)
	sz := make([]int32, nc)
	visited := make([]bool, nc)
	next := int32(0)
	type dfsFrame struct {
		c  int32
		ei int
	}
	var stack []dfsFrame
	for r := 0; r < nc; r++ {
		if visited[r] {
			continue
		}
		visited[r] = true
		stack = append(stack[:0], dfsFrame{int32(r), 0})
		for len(stack) > 0 {
			fr := &stack[len(stack)-1]
			if fr.ei < len(dagOut[fr.c]) {
				d := dagOut[fr.c][fr.ei]
				fr.ei++
				if !visited[d] {
					visited[d] = true
					stack = append(stack, dfsFrame{d, 0})
				}
				continue
			}
			post[fr.c] = next
			next++
			sz[fr.c] += 1
			stack = stack[:len(stack)-1]
			if len(stack) > 0 {
				sz[stack[len(stack)-1].c] += sz[fr.c]
			}
		}
	}
	ix.post = post

	// Interval labels, successors first. label(c) = merge of c's own tree
	// interval and every successor's label; one undecided successor (or
	// blowing the byte budget) makes c undecided, and undecidedness
	// propagates to all ancestors — fallback stays sound.
	order := make([]int32, nc)
	for c := int32(0); int(c) < nc; c++ {
		order[post[c]] = c
	}
	labels := make([][]int32, nc)
	var used int64
	for i := 0; i < nc; i++ {
		c := order[i]
		und := false
		est := 2
		for _, d := range dagOut[c] {
			if ix.undecided[d] {
				und = true
				break
			}
			est += len(labels[d])
		}
		if !und {
			ivs := make([]int32, 0, est)
			ivs = append(ivs, post[c]-sz[c]+1, post[c])
			for _, d := range dagOut[c] {
				ivs = append(ivs, labels[d]...)
			}
			ivs = mergeIntervals(ivs)
			if used+int64(len(ivs))*4 > budget {
				und = true
			} else {
				labels[c] = ivs
				used += int64(len(ivs)) * 4
			}
		}
		ix.undecided[c] = und
	}
	ix.ivOff = make([]int32, nc+1)
	total := 0
	for c := 0; c < nc; c++ {
		ix.ivOff[c] = int32(total)
		total += len(labels[c])
	}
	ix.ivOff[nc] = int32(total)
	ix.ivals = make([]int32, 0, total)
	for c := 0; c < nc; c++ {
		ix.ivals = append(ix.ivals, labels[c]...)
	}

	// Frontier lists for the source (in-node) SCCs: the boundary slots the
	// frontier-cut BFS of core.localEval would emit — query-independent,
	// so computed once here and shared by every query. Parallel across
	// source SCCs; the per-SCC results are accounted against the budget in
	// deterministic (sorted) order so the stored set is reproducible.
	if spec.Boundary != nil && len(spec.Sources) > 0 {
		type task struct {
			c    int32
			seed int32
		}
		var tasks []task
		taken := make(map[int32]bool, len(spec.Sources))
		for _, s := range spec.Sources {
			if s < 0 || int(s) >= n {
				continue
			}
			c := comp[s]
			if !taken[c] {
				taken[c] = true
				tasks = append(tasks, task{c: c, seed: s})
			}
		}
		sort.Slice(tasks, func(i, j int) bool { return tasks[i].c < tasks[j].c })
		results := make([][]int32, len(tasks))
		workers := 1
		if len(tasks) >= 16 && n >= 2048 {
			workers = runtime.GOMAXPROCS(0)
			if workers > 8 {
				workers = 8
			}
		}
		var nextTask atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				seen := make([]int32, n)
				for i := range seen {
					seen[i] = -1
				}
				queue := make([]int32, 0, n)
				for {
					ti := int(nextTask.Add(1)) - 1
					if ti >= len(tasks) {
						return
					}
					results[ti] = frontierOf(g, comp, spec.Boundary, tasks[ti].seed, tasks[ti].c, seen, int32(ti), queue)
				}
			}()
		}
		wg.Wait()
		for i, tk := range tasks {
			cost := int64(len(results[i]))*4 + 16
			if used+cost > budget {
				continue // undecided frontier: queries from this SCC fall back
			}
			used += cost
			row := results[i]
			if row == nil {
				row = emptyFront // present-but-empty, distinct from not stored
			}
			ix.fronts[tk.c] = row
		}
	}
	ix.bytes = used
	return ix
}

// emptyFront marks a stored frontier that happens to be empty (the source
// SCC reaches no boundary outside itself) — non-nil so lookup code can
// tell it apart from "not stored under the budget".
var emptyFront = []int32{}

// emptyGFront is emptyFront's global-ID counterpart.
var emptyGFront = []graph.NodeID{}

// PrecomputeGlobals materializes the frontier lists in global node IDs via
// the fragment's slot-to-global mapping, letting EquationGlobal return
// equation bodies by reference with zero per-query mapping work. Call once
// after Build (or decode), before the index starts serving.
func (ix *Index) PrecomputeGlobals(global func(l int32) graph.NodeID) {
	ix.gfronts = make([][]graph.NodeID, ix.nc)
	for c, row := range ix.fronts {
		if row == nil {
			continue
		}
		if len(row) == 0 {
			ix.gfronts[c] = emptyGFront
			continue
		}
		g := make([]graph.NodeID, len(row))
		for i, s := range row {
			g[i] = global(s)
		}
		ix.gfronts[c] = g
	}
}

// frontierOf runs one frontier-cut BFS from seed (a member of SCC c):
// expand through everything in c (boundary or not) and through interior
// nodes, stop at boundary slots outside c and collect them. The result is
// sorted for determinism. seen is a stamped visit buffer owned by the
// calling worker.
func frontierOf(g *graph.Graph, comp []int32, boundary func(int32) bool, seed, c int32, seen []int32, stamp int32, queue []int32) []int32 {
	queue = append(queue[:0], seed)
	seen[seed] = stamp
	var out []int32
	for qi := 0; qi < len(queue); qi++ {
		x := queue[qi]
		if x != seed && boundary(x) && comp[x] != c {
			out = append(out, x)
			continue
		}
		for _, w := range g.Out(graph.NodeID(x)) {
			if seen[w] != stamp {
				seen[w] = stamp
				queue = append(queue, int32(w))
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// mergeIntervals sorts [lo,hi] pairs by lo and coalesces overlapping or
// adjacent ones.
func mergeIntervals(ivs []int32) []int32 {
	m := len(ivs) / 2
	if m <= 1 {
		return ivs
	}
	ord := make([]int, m)
	for i := range ord {
		ord[i] = i
	}
	sort.Slice(ord, func(a, b int) bool { return ivs[2*ord[a]] < ivs[2*ord[b]] })
	out := make([]int32, 0, len(ivs))
	for _, i := range ord {
		lo, hi := ivs[2*i], ivs[2*i+1]
		if len(out) > 0 && lo <= out[len(out)-1]+1 {
			if hi > out[len(out)-1] {
				out[len(out)-1] = hi
			}
			continue
		}
		out = append(out, lo, hi)
	}
	return out
}

// contains reports whether postorder number p lies in SCC c's label.
func (ix *Index) contains(c, p int32) bool {
	ivs := ix.ivals[ix.ivOff[c]:ix.ivOff[c+1]]
	j := sort.Search(len(ivs)/2, func(i int) bool { return ivs[2*i] > p }) - 1
	return j >= 0 && p <= ivs[2*j+1]
}

// Equation returns the precomputed Boolean-equation body for source slot
// v: the frontier-cut variable list (callers must not modify it) and
// whether v reaches the target locally. tLocal is the target's local slot
// when the target maps into this fragment (hasT); a tLocal at or past the
// build-time slot count reports reachesT=false, which is exact for an
// unstale source: slots appended after the build only ever gain incoming
// edges, and gaining one marks its source's cone stale.
//
// ok is false — and the caller must fall back to direct evaluation — when
// v postdates the build, its SCC is stale or undecided, or its frontier
// was not stored under the budget.
func (ix *Index) Equation(v, tLocal int32, hasT bool) (vars []int32, reachesT, ok bool) {
	if v < 0 || int(v) >= ix.n {
		ix.fallbacks.Add(1)
		return nil, false, false
	}
	c := ix.comp[v]
	if ix.stale[c] || ix.undecided[c] {
		ix.fallbacks.Add(1)
		return nil, false, false
	}
	fvars := ix.fronts[c]
	if fvars == nil {
		ix.fallbacks.Add(1)
		return nil, false, false
	}
	if hasT && tLocal >= 0 && int(tLocal) < ix.n {
		d := ix.comp[tLocal]
		reachesT = c == d || ix.contains(c, ix.post[d])
	}
	ix.hits.Add(1)
	return fvars, reachesT, true
}

// EquationGlobal is Equation with the variable list already mapped to
// global node IDs (see PrecomputeGlobals). The returned slice is shared —
// callers must treat it as read-only. ok is false when Equation's would
// be, or when PrecomputeGlobals has not run.
func (ix *Index) EquationGlobal(v, tLocal int32, hasT bool) (vars []graph.NodeID, reachesT, ok bool) {
	if v < 0 || int(v) >= ix.n || ix.gfronts == nil {
		ix.fallbacks.Add(1)
		return nil, false, false
	}
	c := ix.comp[v]
	if ix.stale[c] || ix.undecided[c] {
		ix.fallbacks.Add(1)
		return nil, false, false
	}
	gvars := ix.gfronts[c]
	if gvars == nil {
		ix.fallbacks.Add(1)
		return nil, false, false
	}
	if hasT && tLocal >= 0 && int(tLocal) < ix.n {
		d := ix.comp[tLocal]
		reachesT = c == d || ix.contains(c, ix.post[d])
	}
	ix.hits.Add(1)
	return gvars, reachesT, true
}

// Reaches reports whether slot u reaches slot v locally. decided is false
// (and reached meaningless) when the index cannot answer: a slot postdates
// the build, or u's SCC is stale or undecided.
func (ix *Index) Reaches(u, v int32) (reached, decided bool) {
	if u < 0 || int(u) >= ix.n || v < 0 || int(v) >= ix.n {
		return false, false
	}
	c := ix.comp[u]
	if ix.stale[c] || ix.undecided[c] {
		return false, false
	}
	d := ix.comp[v]
	if c == d {
		return true, true
	}
	return ix.contains(c, ix.post[d]), true
}

// MarkDirty marks the labels invalidated by a mutation at slot u: the
// ancestor cone of u's SCC in the build-time condensation — exactly the
// sources whose reachable set may now differ. A slot outside the
// build-time range (or a negative one, the caller's "everything changed"
// signal) marks the whole index stale. Must run while the caller excludes
// index readers (the Fragmentation write lock).
func (ix *Index) MarkDirty(u int32) {
	if ix == nil {
		return
	}
	ix.anyStale.Store(true)
	if u < 0 || int(u) >= ix.n {
		for c := range ix.stale {
			ix.stale[c] = true
		}
		return
	}
	c := ix.comp[u]
	if ix.stale[c] {
		return // the stale set is ancestor-closed: cone already marked
	}
	ix.stale[c] = true
	queue := []int32{c}
	for len(queue) > 0 {
		x := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		for _, p := range ix.dagIn[x] {
			if !ix.stale[p] {
				ix.stale[p] = true
				queue = append(queue, p)
			}
		}
	}
}

// AnyStale reports whether any label has been invalidated since the build.
func (ix *Index) AnyStale() bool { return ix.anyStale.Load() }

// StaleComps counts stale SCCs (diagnostics).
func (ix *Index) StaleComps() int {
	n := 0
	for _, s := range ix.stale {
		if s {
			n++
		}
	}
	return n
}

// LabelBytes reports the bytes charged against the budget (interval labels
// plus frontier lists).
func (ix *Index) LabelBytes() int64 { return ix.bytes }

// Hits reports how many Equation calls were answered from the index.
func (ix *Index) Hits() int64 { return ix.hits.Load() }

// Fallbacks reports how many Equation calls could not be answered.
func (ix *Index) Fallbacks() int64 { return ix.fallbacks.Load() }

// AddHits folds retired counters into this index's (used when an index
// replaces a predecessor so cumulative stats survive the swap).
func (ix *Index) AddHits(hits, fallbacks int64) {
	ix.hits.Add(hits)
	ix.fallbacks.Add(fallbacks)
}

const codecMagic = "RIX1"

// MarshalBinary encodes the immutable part of the index (staleness and
// counters are runtime state and deliberately excluded).
func (ix *Index) MarshalBinary() ([]byte, error) {
	var b []byte
	b = append(b, codecMagic...)
	u32 := func(v uint32) {
		b = binary.LittleEndian.AppendUint32(b, v)
	}
	i32s := func(vs []int32) {
		for _, v := range vs {
			u32(uint32(v))
		}
	}
	u32(uint32(ix.n))
	u32(uint32(ix.nc))
	i32s(ix.comp)
	i32s(ix.post)
	i32s(ix.ivOff)
	u32(uint32(len(ix.ivals)))
	i32s(ix.ivals)
	bits := make([]byte, (ix.nc+7)/8)
	for c, u := range ix.undecided {
		if u {
			bits[c/8] |= 1 << (c % 8)
		}
	}
	b = append(b, bits...)
	for _, row := range ix.dagIn {
		u32(uint32(len(row)))
		i32s(row)
	}
	nf := 0
	for _, row := range ix.fronts {
		if row != nil {
			nf++
		}
	}
	u32(uint32(nf))
	for c, row := range ix.fronts {
		if row == nil {
			continue
		}
		u32(uint32(c))
		u32(uint32(len(row)))
		i32s(row)
	}
	return b, nil
}

// UnmarshalBinary decodes an index encoded by MarshalBinary. Every length
// and reference is validated, so arbitrary input bytes cannot panic or
// force outsized allocations (the fuzz target exercises exactly that).
func UnmarshalBinary(b []byte) (*Index, error) {
	if len(b) < len(codecMagic) || string(b[:len(codecMagic)]) != codecMagic {
		return nil, fmt.Errorf("reachindex: bad magic")
	}
	b = b[len(codecMagic):]
	u32 := func() (uint32, error) {
		if len(b) < 4 {
			return 0, fmt.Errorf("reachindex: truncated")
		}
		v := binary.LittleEndian.Uint32(b)
		b = b[4:]
		return v, nil
	}
	i32s := func(n int) ([]int32, error) {
		if n < 0 || len(b) < 4*n {
			return nil, fmt.Errorf("reachindex: truncated array")
		}
		out := make([]int32, n)
		for i := range out {
			out[i] = int32(binary.LittleEndian.Uint32(b[4*i:]))
		}
		b = b[4*n:]
		return out, nil
	}
	nu, err := u32()
	if err != nil {
		return nil, err
	}
	ncu, err := u32()
	if err != nil {
		return nil, err
	}
	n, nc := int(nu), int(ncu)
	// Each slot costs 4 bytes in comp and each SCC 4 in post, so both are
	// bounded by the input size — reject before allocating otherwise.
	if n < 0 || nc < 0 || 4*n > len(b) || 4*nc > len(b) {
		return nil, fmt.Errorf("reachindex: implausible sizes n=%d nc=%d", n, nc)
	}
	ix := &Index{n: n, nc: nc, stale: make([]bool, nc), fronts: make([][]int32, nc)}
	if ix.comp, err = i32s(n); err != nil {
		return nil, err
	}
	for _, c := range ix.comp {
		if c < 0 || int(c) >= nc {
			return nil, fmt.Errorf("reachindex: comp out of range")
		}
	}
	if ix.post, err = i32s(nc); err != nil {
		return nil, err
	}
	if ix.ivOff, err = i32s(nc + 1); err != nil {
		return nil, err
	}
	nivu, err := u32()
	if err != nil {
		return nil, err
	}
	niv := int(nivu)
	if niv < 0 || 4*niv > len(b) {
		return nil, fmt.Errorf("reachindex: implausible ivals size")
	}
	if len(ix.ivOff) > 0 && (ix.ivOff[0] != 0 || int(ix.ivOff[nc]) != niv) {
		return nil, fmt.Errorf("reachindex: bad interval offsets")
	}
	for c := 0; c < nc; c++ {
		d := ix.ivOff[c+1] - ix.ivOff[c]
		if d < 0 || d%2 != 0 {
			return nil, fmt.Errorf("reachindex: bad interval offsets")
		}
	}
	if ix.ivals, err = i32s(niv); err != nil {
		return nil, err
	}
	nbits := (nc + 7) / 8
	if len(b) < nbits {
		return nil, fmt.Errorf("reachindex: truncated undecided bitmap")
	}
	ix.undecided = make([]bool, nc)
	for c := 0; c < nc; c++ {
		ix.undecided[c] = b[c/8]&(1<<(c%8)) != 0
	}
	b = b[nbits:]
	ix.dagIn = make([][]int32, nc)
	for c := 0; c < nc; c++ {
		lu, err := u32()
		if err != nil {
			return nil, err
		}
		row, err := i32s(int(lu))
		if err != nil {
			return nil, err
		}
		for _, p := range row {
			if p < 0 || int(p) >= nc {
				return nil, fmt.Errorf("reachindex: dag edge out of range")
			}
		}
		ix.dagIn[c] = row
	}
	nf, err := u32()
	if err != nil {
		return nil, err
	}
	for i := 0; i < int(nf); i++ {
		cu, err := u32()
		if err != nil {
			return nil, err
		}
		c := int32(cu)
		if c < 0 || int(c) >= nc {
			return nil, fmt.Errorf("reachindex: frontier comp out of range")
		}
		lu, err := u32()
		if err != nil {
			return nil, err
		}
		row, err := i32s(int(lu))
		if err != nil {
			return nil, err
		}
		for _, s := range row {
			if s < 0 || int(s) >= n {
				return nil, fmt.Errorf("reachindex: frontier slot out of range")
			}
		}
		if len(row) == 0 {
			row = emptyFront // i32s(0) already returns non-nil, but be explicit
		}
		ix.fronts[c] = row
		ix.bytes += int64(len(row))*4 + 16
	}
	ix.bytes += int64(niv) * 4
	return ix, nil
}
