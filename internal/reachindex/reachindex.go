// Package reachindex implements a budgeted per-fragment reachability
// index over the fragment's condensation DAG, in the spirit of Seufert et
// al., "High-Performance Reachability Query Processing under Index Size
// Restrictions" (PAPERS.md): interval/tree labels answer "u reaches v
// locally" in O(log labels), and a per-in-node-SCC precomputed frontier
// cut turns the whole local evaluation of a reachability query into table
// lookups. Everything is computed under one global byte budget; whatever
// does not fit stays undecided and falls back to direct evaluation.
//
// The index stores three things, all over the SCC condensation of the
// fragment-local graph (slots are the fragment's local indices):
//
//   - a DFS spanning forest of the condensation with postorder numbers:
//     each SCC's own subtree is one interval [low, post];
//   - per-SCC merged interval labels: label(c) covers exactly the
//     postorder numbers of the SCCs reachable from c (own subtree plus
//     the union of the successors' labels, coalesced). Membership of
//     post(d) in label(c) decides c ⇝ d;
//   - per-source-SCC frontier lists: for each in-node SCC, the boundary
//     slots its frontier-cut BFS would emit — the exact variable list of
//     the Boolean equation core.localEval produces, which is target-
//     independent (the target only flips the constTrue bit, and that is
//     what the interval labels answer). This is what lets a query skip
//     the per-in-node BFS entirely.
//
// The build is parallel across Spec.Workers cores (default GOMAXPROCS)
// and deterministic: the condensation DAG is assembled from per-chunk
// node-range scans merged in chunk order, interval labels are computed
// level-synchronously (every SCC of one condensation level depends only
// on completed lower levels, so a level's SCCs fan out across the worker
// pool), and the byte budget is charged in a serial pass whose order is
// the budget policy. The output is byte-identical for every worker count
// — replicas that rebuild with different core counts still agree.
//
// Budget policies decide which SCCs the byte budget is spent on:
// PolicyPostorder charges successors-first in DFS postorder (uniform);
// PolicyHits charges the SCCs with the highest decayed hit counts first
// (Spec.Hot, fed back from the per-slot counters of the previous index),
// so labels and frontier lists concentrate on the sources queries
// actually touch. A hot SCC's descendant closure inherits its priority —
// a label is only computable when its successors' labels are stored.
//
// Incremental maintenance is staleness-based: MarkDirty(u) marks the
// ancestor cone of u's SCC stale (exactly the sources whose reachable
// set, hence equation, may have changed); stale SCCs answer !ok and the
// caller falls back to direct evaluation until an asynchronous rebuild
// installs a fresh index — the same swap-while-serving discipline the
// rebalance ('R') path uses.
//
// Concurrency contract: MarkDirty must run while the caller excludes
// readers (the Fragmentation write lock); Equation/Reaches may run
// concurrently with each other under the matching read lock. The counters
// are atomic and may be read at any time.
package reachindex

import (
	"encoding/binary"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"distreach/internal/graph"
)

// DefaultBudget is the per-fragment label budget in bytes. Labels plus
// frontier lists beyond it stay undecided and fall back to direct
// evaluation.
const DefaultBudget = 4 << 20

// Policy selects the order the byte budget is charged in — which SCCs get
// labels and frontier lists when the budget cannot cover everything.
type Policy uint8

const (
	// PolicyPostorder charges successors-first in DFS postorder: uniform
	// coverage, no feedback. The default.
	PolicyPostorder Policy = iota
	// PolicyHits charges the SCCs with the highest decayed hit counts
	// (Spec.Hot) first, each preceded by its descendant closure, so the
	// budget concentrates on what queries actually touch. With no hit
	// history it degenerates to PolicyPostorder.
	PolicyHits
)

// ParsePolicy resolves the -reachindex-policy flag values.
func ParsePolicy(s string) (Policy, error) {
	switch s {
	case "", "postorder":
		return PolicyPostorder, nil
	case "hits":
		return PolicyHits, nil
	}
	return 0, fmt.Errorf("reachindex: unknown budget policy %q (want postorder or hits)", s)
}

func (p Policy) String() string {
	if p == PolicyHits {
		return "hits"
	}
	return "postorder"
}

// Spec is the input to Build.
type Spec struct {
	// Graph is the fragment-local graph (slots as node IDs) the index is
	// computed over; Comp/NC its SCC decomposition (as from LocalSCC).
	Graph *graph.Graph
	Comp  []int32
	NC    int
	// Boundary reports whether a slot is a boundary node (virtual node or
	// in-node) — where the frontier-cut BFS stops. Nil disables frontier
	// precomputation (labels only).
	Boundary func(l int32) bool
	// Sources are the slots (in-nodes) whose SCCs get precomputed
	// frontier lists.
	Sources []int32
	// Budget caps label + frontier bytes; <= 0 means DefaultBudget.
	Budget int64
	// Policy selects the budget-charging order (see Policy).
	Policy Policy
	// Hot carries decayed per-slot hit counts from the previous index
	// generation (only source slots are consulted; nil = no history).
	// Consumed by PolicyHits.
	Hot []int64
	// Workers bounds build parallelism: 0 = GOMAXPROCS, 1 = serial. The
	// output is byte-identical for every value.
	Workers int
}

// Index is one fragment's reachability index. See the package comment for
// the structure and the concurrency contract.
type Index struct {
	n  int // slot count at build time; later slots are undecided
	nc int

	policy    Policy
	comp      []int32   // build-time SCC of every slot
	dagIn     [][]int32 // deduplicated reverse condensation adjacency
	post      []int32   // DFS-forest postorder number per SCC
	ivals     []int32   // flattened [lo,hi] interval pairs, all SCCs
	ivOff     []int32   // per-SCC offsets into ivals (len nc+1)
	undecided []bool    // label over budget (or transitively undecided)
	fronts    [][]int32 // per-SCC frontier slot lists; nil = not stored
	// gfronts mirrors fronts with the slots mapped to global node IDs
	// (PrecomputeGlobals); EquationGlobal hands these out by reference so
	// the hot path never copies or re-maps a variable list.
	gfronts [][]graph.NodeID
	bytes   int64

	stale    []bool // mutated via MarkDirty under the external write lock
	anyStale atomic.Bool

	hits, fallbacks atomic.Int64
	// srcHits counts index hits per source slot (atomic), the feedback
	// PolicyHits builds on. Drained into the fragment's decayed hotness
	// map when the index is replaced or retired.
	srcHits []int64
}

// Build computes the index. It reads spec.Graph but retains nothing from
// it; the returned index is immutable except for staleness and counters.
func Build(spec Spec) *Index {
	g, comp, nc := spec.Graph, spec.Comp, spec.NC
	n := g.NumNodes()
	budget := spec.Budget
	if budget <= 0 {
		budget = DefaultBudget
	}
	workers := spec.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	ix := &Index{
		n:         n,
		nc:        nc,
		policy:    spec.Policy,
		comp:      append([]int32(nil), comp...),
		undecided: make([]bool, nc),
		stale:     make([]bool, nc),
		fronts:    make([][]int32, nc),
		srcHits:   make([]int64, n),
	}

	dagOut := buildCondensation(ix, g, comp, nc, workers)
	post, sz := dfsForest(dagOut, nc)
	ix.post = post

	// order[i] is the SCC with postorder number i: increasing index is a
	// successors-first processing order (in a DAG every edge (c,d) has
	// post[d] < post[c]).
	order := make([]int32, nc)
	for c := int32(0); int(c) < nc; c++ {
		order[post[c]] = c
	}
	charge := chargeOrder(spec, comp, dagOut, post, order, nc)
	used := buildLabels(ix, dagOut, post, sz, order, charge, nc, budget, workers)
	used = buildFrontiers(ix, g, comp, spec, charge, n, nc, budget, used, workers)
	ix.bytes = used
	return ix
}

// buildCondensation assembles the deduplicated condensation DAG, both
// directions: forward for the DFS forest and label propagation, reverse
// for MarkDirty's ancestor walk. The node scan fans out across workers in
// fixed chunks; each chunk dedupes locally in first-occurrence order and
// the chunks merge serially in node order, so the adjacency lists come
// out identical to a single serial scan whatever the worker count.
func buildCondensation(ix *Index, g *graph.Graph, comp []int32, nc, workers int) [][]int32 {
	n := g.NumNodes()
	dagOut := make([][]int32, nc)
	ix.dagIn = make([][]int32, nc)
	chunk := 2048
	nchunks := (n + chunk - 1) / chunk
	if nchunks < 1 {
		nchunks = 1
	}
	edges := make([][]int64, nchunks) // packed cu<<32|cw, locally deduped
	parallelFor(workers, nchunks, func(ci int) {
		lo, hi := ci*chunk, (ci+1)*chunk
		if hi > n {
			hi = n
		}
		var out []int64
		seen := make(map[int64]struct{})
		for u := lo; u < hi; u++ {
			if g.Deleted(graph.NodeID(u)) {
				continue
			}
			cu := comp[u]
			for _, w := range g.Out(graph.NodeID(u)) {
				cw := comp[w]
				if cu == cw {
					continue
				}
				key := int64(cu)<<32 | int64(uint32(cw))
				if _, dup := seen[key]; dup {
					continue
				}
				seen[key] = struct{}{}
				out = append(out, key)
			}
		}
		edges[ci] = out
	})
	seen := make(map[int64]struct{})
	for _, chunkEdges := range edges {
		for _, key := range chunkEdges {
			if _, dup := seen[key]; dup {
				continue
			}
			seen[key] = struct{}{}
			cu, cw := int32(key>>32), int32(uint32(key))
			dagOut[cu] = append(dagOut[cu], cw)
			ix.dagIn[cw] = append(ix.dagIn[cw], cu)
		}
	}
	return dagOut
}

// dfsForest computes a DFS spanning forest of the condensation with
// postorder numbers and subtree sizes: each SCC's tree subtree is the
// contiguous postorder block [post-size+1, post].
func dfsForest(dagOut [][]int32, nc int) (post, sz []int32) {
	post = make([]int32, nc)
	sz = make([]int32, nc)
	visited := make([]bool, nc)
	next := int32(0)
	type dfsFrame struct {
		c  int32
		ei int
	}
	var stack []dfsFrame
	for r := 0; r < nc; r++ {
		if visited[r] {
			continue
		}
		visited[r] = true
		stack = append(stack[:0], dfsFrame{int32(r), 0})
		for len(stack) > 0 {
			fr := &stack[len(stack)-1]
			if fr.ei < len(dagOut[fr.c]) {
				d := dagOut[fr.c][fr.ei]
				fr.ei++
				if !visited[d] {
					visited[d] = true
					stack = append(stack, dfsFrame{d, 0})
				}
				continue
			}
			post[fr.c] = next
			next++
			sz[fr.c] += 1
			stack = stack[:len(stack)-1]
			if len(stack) > 0 {
				sz[stack[len(stack)-1].c] += sz[fr.c]
			}
		}
	}
	return post, sz
}

// chargeOrder decides the serial order the byte budget is charged in.
// Every order must list an SCC after its successors (a label is only
// computable from stored successor labels). PolicyPostorder is plain
// postorder; PolicyHits sorts by descending priority — the decayed hit
// count of the SCC's sources, propagated to its descendant closure so a
// hot SCC's prerequisites are funded first — with postorder as the tie
// break (which also keeps the no-history case identical to postorder).
func chargeOrder(spec Spec, comp []int32, dagOut [][]int32, post, order []int32, nc int) []int32 {
	if spec.Policy != PolicyHits {
		return order
	}
	prio := make([]int64, nc)
	any := false
	if spec.Hot != nil {
		for _, s := range spec.Sources {
			if s < 0 || int(s) >= len(spec.Hot) || int(s) >= len(comp) {
				continue
			}
			if h := spec.Hot[s]; h > 0 {
				prio[comp[s]] += h
				any = true
			}
		}
	}
	if !any {
		return order
	}
	// Ancestors-first (decreasing postorder): push each SCC's priority down
	// to its successors, so a descendant carries the max priority of any
	// ancestor that needs it.
	for i := nc - 1; i >= 0; i-- {
		c := order[i]
		for _, d := range dagOut[c] {
			if prio[c] > prio[d] {
				prio[d] = prio[c]
			}
		}
	}
	out := append([]int32(nil), order...)
	sort.SliceStable(out, func(a, b int) bool { return prio[out[a]] > prio[out[b]] })
	return out
}

// buildLabels computes the per-SCC merged interval labels in two phases.
//
// Phase A (parallel, level-synchronous): SCCs are bucketed by condensation
// level (level(c) = 1 + max over successors); every SCC of one level
// depends only on completed lower levels, so a level's labels fan out
// across the worker pool. A label whose merged form alone exceeds the
// whole budget can never be stored: it is skipped, and the skip
// propagates to ancestors (their labels would be uncomputable) — this is
// also what bounds phase A's memory.
//
// Phase B (serial, cheap): the budget is charged in `charge` order. An SCC
// is undecided when phase A skipped it, any successor ended undecided, or
// its label does not fit the remaining budget; undecidedness propagates
// to all ancestors, so fallback stays sound. The phase split is what
// makes the output independent of the worker count: computation order
// varies, the charging order never does.
func buildLabels(ix *Index, dagOut [][]int32, post, sz, order, charge []int32, nc int, budget int64, workers int) int64 {
	level := make([]int32, nc)
	maxLevel := int32(0)
	for i := 0; i < nc; i++ {
		c := order[i]
		lv := int32(0)
		for _, d := range dagOut[c] {
			if level[d]+1 > lv {
				lv = level[d] + 1
			}
		}
		level[c] = lv
		if lv > maxLevel {
			maxLevel = lv
		}
	}
	buckets := make([][]int32, maxLevel+1)
	for i := 0; i < nc; i++ {
		c := order[i]
		buckets[level[c]] = append(buckets[level[c]], c)
	}
	labels := make([][]int32, nc)
	skip := make([]bool, nc)
	for lv := int32(0); lv <= maxLevel; lv++ {
		cs := buckets[lv]
		parallelFor(workers, len(cs), func(i int) {
			c := cs[i]
			est := 2
			for _, d := range dagOut[c] {
				if skip[d] {
					skip[c] = true
					return
				}
				est += len(labels[d])
			}
			ivs := make([]int32, 0, est)
			ivs = append(ivs, post[c]-sz[c]+1, post[c])
			for _, d := range dagOut[c] {
				ivs = append(ivs, labels[d]...)
			}
			ivs = mergeIntervals(ivs)
			if int64(len(ivs))*4 > budget {
				skip[c] = true
				return
			}
			labels[c] = ivs
		})
	}
	var used int64
	for _, c := range charge {
		und := skip[c]
		if !und {
			for _, d := range dagOut[c] {
				if ix.undecided[d] {
					und = true
					break
				}
			}
		}
		if !und {
			cost := int64(len(labels[c])) * 4
			if used+cost > budget {
				und = true
			} else {
				used += cost
			}
		}
		if und {
			ix.undecided[c] = true
			labels[c] = nil
		}
	}
	ix.ivOff = make([]int32, nc+1)
	total := 0
	for c := 0; c < nc; c++ {
		ix.ivOff[c] = int32(total)
		total += len(labels[c])
	}
	ix.ivOff[nc] = int32(total)
	ix.ivals = make([]int32, 0, total)
	for c := 0; c < nc; c++ {
		ix.ivals = append(ix.ivals, labels[c]...)
	}
	return used
}

// buildFrontiers computes the frontier lists for the source (in-node)
// SCCs: the boundary slots the frontier-cut BFS of core.localEval would
// emit — query-independent, so computed once here and shared by every
// query. The BFS runs in parallel across source SCCs; the per-SCC results
// are accounted against the budget serially in the policy's charge order,
// so the stored set is reproducible whatever the worker count.
func buildFrontiers(ix *Index, g *graph.Graph, comp []int32, spec Spec, charge []int32, n, nc int, budget, used int64, workers int) int64 {
	if spec.Boundary == nil || len(spec.Sources) == 0 {
		return used
	}
	type task struct {
		c    int32
		seed int32
	}
	var tasks []task
	taken := make(map[int32]bool, len(spec.Sources))
	for _, s := range spec.Sources {
		if s < 0 || int(s) >= n {
			continue
		}
		c := comp[s]
		if !taken[c] {
			taken[c] = true
			tasks = append(tasks, task{c: c, seed: s})
		}
	}
	// Charge (and store) in policy order: the position of each SCC in the
	// charge sequence is its frontier priority too, so PolicyHits funds hot
	// sources' lists first. PolicyPostorder's postorder ranks are as
	// arbitrary-but-deterministic as the previous sorted-SCC order was.
	rank := make([]int32, nc)
	for i, c := range charge {
		rank[c] = int32(i)
	}
	sort.Slice(tasks, func(i, j int) bool {
		if rank[tasks[i].c] != rank[tasks[j].c] {
			return rank[tasks[i].c] < rank[tasks[j].c]
		}
		return tasks[i].c < tasks[j].c
	})
	results := make([][]int32, len(tasks))
	nworkers := workers
	if nworkers > len(tasks) {
		nworkers = len(tasks)
	}
	if nworkers < 1 {
		nworkers = 1
	}
	var nextTask atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < nworkers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			seen := make([]int32, n)
			for i := range seen {
				seen[i] = -1
			}
			queue := make([]int32, 0, n)
			for {
				ti := int(nextTask.Add(1)) - 1
				if ti >= len(tasks) {
					return
				}
				results[ti] = frontierOf(g, comp, spec.Boundary, tasks[ti].seed, tasks[ti].c, seen, int32(ti), queue)
			}
		}()
	}
	wg.Wait()
	for i, tk := range tasks {
		cost := int64(len(results[i]))*4 + 16
		if used+cost > budget {
			continue // undecided frontier: queries from this SCC fall back
		}
		used += cost
		row := results[i]
		if row == nil {
			row = emptyFront // present-but-empty, distinct from not stored
		}
		ix.fronts[tk.c] = row
	}
	return used
}

// parallelFor runs fn(0..n-1) across at most `workers` goroutines in
// dynamically balanced chunks. fn must only write state owned by its own
// index; with workers <= 1 it degenerates to a plain loop.
func parallelFor(workers, n int, fn func(i int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 || n <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	const chunk = 64
	nchunks := (n + chunk - 1) / chunk
	if workers > nchunks {
		workers = nchunks
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				ci := int(next.Add(1)) - 1
				if ci >= nchunks {
					return
				}
				lo, hi := ci*chunk, (ci+1)*chunk
				if hi > n {
					hi = n
				}
				for i := lo; i < hi; i++ {
					fn(i)
				}
			}
		}()
	}
	wg.Wait()
}

// emptyFront marks a stored frontier that happens to be empty (the source
// SCC reaches no boundary outside itself) — non-nil so lookup code can
// tell it apart from "not stored under the budget".
var emptyFront = []int32{}

// emptyGFront is emptyFront's global-ID counterpart.
var emptyGFront = []graph.NodeID{}

// PrecomputeGlobals materializes the frontier lists in global node IDs via
// the fragment's slot-to-global mapping, letting EquationGlobal return
// equation bodies by reference with zero per-query mapping work. Call once
// after Build (or decode), before the index starts serving.
func (ix *Index) PrecomputeGlobals(global func(l int32) graph.NodeID) {
	ix.gfronts = make([][]graph.NodeID, ix.nc)
	for c, row := range ix.fronts {
		if row == nil {
			continue
		}
		if len(row) == 0 {
			ix.gfronts[c] = emptyGFront
			continue
		}
		g := make([]graph.NodeID, len(row))
		for i, s := range row {
			g[i] = global(s)
		}
		ix.gfronts[c] = g
	}
}

// frontierOf runs one frontier-cut BFS from seed (a member of SCC c):
// expand through everything in c (boundary or not) and through interior
// nodes, stop at boundary slots outside c and collect them. The result is
// sorted for determinism. seen is a stamped visit buffer owned by the
// calling worker.
func frontierOf(g *graph.Graph, comp []int32, boundary func(int32) bool, seed, c int32, seen []int32, stamp int32, queue []int32) []int32 {
	queue = append(queue[:0], seed)
	seen[seed] = stamp
	var out []int32
	for qi := 0; qi < len(queue); qi++ {
		x := queue[qi]
		if x != seed && boundary(x) && comp[x] != c {
			out = append(out, x)
			continue
		}
		for _, w := range g.Out(graph.NodeID(x)) {
			if seen[w] != stamp {
				seen[w] = stamp
				queue = append(queue, int32(w))
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// mergeIntervals sorts [lo,hi] pairs by lo and coalesces overlapping or
// adjacent ones.
func mergeIntervals(ivs []int32) []int32 {
	m := len(ivs) / 2
	if m <= 1 {
		return ivs
	}
	ord := make([]int, m)
	for i := range ord {
		ord[i] = i
	}
	sort.Slice(ord, func(a, b int) bool { return ivs[2*ord[a]] < ivs[2*ord[b]] })
	out := make([]int32, 0, len(ivs))
	for _, i := range ord {
		lo, hi := ivs[2*i], ivs[2*i+1]
		if len(out) > 0 && lo <= out[len(out)-1]+1 {
			if hi > out[len(out)-1] {
				out[len(out)-1] = hi
			}
			continue
		}
		out = append(out, lo, hi)
	}
	return out
}

// contains reports whether postorder number p lies in SCC c's label.
func (ix *Index) contains(c, p int32) bool {
	ivs := ix.ivals[ix.ivOff[c]:ix.ivOff[c+1]]
	j := sort.Search(len(ivs)/2, func(i int) bool { return ivs[2*i] > p }) - 1
	return j >= 0 && p <= ivs[2*j+1]
}

// Equation returns the precomputed Boolean-equation body for source slot
// v: the frontier-cut variable list (callers must not modify it) and
// whether v reaches the target locally. tLocal is the target's local slot
// when the target maps into this fragment (hasT); a tLocal at or past the
// build-time slot count reports reachesT=false, which is exact for an
// unstale source: slots appended after the build only ever gain incoming
// edges, and gaining one marks its source's cone stale.
//
// ok is false — and the caller must fall back to direct evaluation — when
// v postdates the build, its SCC is stale or undecided, or its frontier
// was not stored under the budget.
func (ix *Index) Equation(v, tLocal int32, hasT bool) (vars []int32, reachesT, ok bool) {
	if v < 0 || int(v) >= ix.n {
		ix.fallbacks.Add(1)
		return nil, false, false
	}
	c := ix.comp[v]
	if ix.stale[c] || ix.undecided[c] {
		ix.fallbacks.Add(1)
		return nil, false, false
	}
	fvars := ix.fronts[c]
	if fvars == nil {
		ix.fallbacks.Add(1)
		return nil, false, false
	}
	if hasT && tLocal >= 0 && int(tLocal) < ix.n {
		d := ix.comp[tLocal]
		reachesT = c == d || ix.contains(c, ix.post[d])
	}
	ix.hits.Add(1)
	atomic.AddInt64(&ix.srcHits[v], 1)
	return fvars, reachesT, true
}

// EquationGlobal is Equation with the variable list already mapped to
// global node IDs (see PrecomputeGlobals). The returned slice is shared —
// callers must treat it as read-only. ok is false when Equation's would
// be, or when PrecomputeGlobals has not run.
func (ix *Index) EquationGlobal(v, tLocal int32, hasT bool) (vars []graph.NodeID, reachesT, ok bool) {
	if v < 0 || int(v) >= ix.n || ix.gfronts == nil {
		ix.fallbacks.Add(1)
		return nil, false, false
	}
	c := ix.comp[v]
	if ix.stale[c] || ix.undecided[c] {
		ix.fallbacks.Add(1)
		return nil, false, false
	}
	gvars := ix.gfronts[c]
	if gvars == nil {
		ix.fallbacks.Add(1)
		return nil, false, false
	}
	if hasT && tLocal >= 0 && int(tLocal) < ix.n {
		d := ix.comp[tLocal]
		reachesT = c == d || ix.contains(c, ix.post[d])
	}
	ix.hits.Add(1)
	atomic.AddInt64(&ix.srcHits[v], 1)
	return gvars, reachesT, true
}

// Outcome classifies why Equation/EquationGlobal would (or would not)
// answer for source slot v — the observability counterpart of the
// fallback branches above, in the same order, so a traced evaluation can
// tag its eval span with the reason the index was bypassed. Reading the
// same fields the lookup reads, it must be called under the same
// fragmentation read lock; it touches no hit counters.
func (ix *Index) Outcome(v int32) Outcome {
	if v < 0 || int(v) >= ix.n {
		return OutcomeUnslotted
	}
	c := ix.comp[v]
	if ix.stale[c] {
		return OutcomeStale
	}
	if ix.undecided[c] || ix.fronts[c] == nil {
		return OutcomeOverBudget
	}
	return OutcomeHit
}

// Outcome is the index's answerability verdict for one source slot.
type Outcome uint8

const (
	// OutcomeHit: the index answers this slot's equation in two lookups.
	OutcomeHit Outcome = iota
	// OutcomeUnslotted: the slot postdates the build (node added since).
	OutcomeUnslotted
	// OutcomeStale: a mutation invalidated the slot's SCC cone.
	OutcomeStale
	// OutcomeOverBudget: the label budget excluded the SCC's frontier, or
	// the entry is undecided mid-rebuild.
	OutcomeOverBudget
)

// Reaches reports whether slot u reaches slot v locally. decided is false
// (and reached meaningless) when the index cannot answer: a slot postdates
// the build, or u's SCC is stale or undecided.
func (ix *Index) Reaches(u, v int32) (reached, decided bool) {
	if u < 0 || int(u) >= ix.n || v < 0 || int(v) >= ix.n {
		return false, false
	}
	c := ix.comp[u]
	if ix.stale[c] || ix.undecided[c] {
		return false, false
	}
	d := ix.comp[v]
	if c == d {
		return true, true
	}
	return ix.contains(c, ix.post[d]), true
}

// MarkDirty marks the labels invalidated by a mutation at slot u: the
// ancestor cone of u's SCC in the build-time condensation — exactly the
// sources whose reachable set may now differ. A slot outside the
// build-time range (or a negative one, the caller's "everything changed"
// signal) marks the whole index stale. Must run while the caller excludes
// index readers (the Fragmentation write lock).
func (ix *Index) MarkDirty(u int32) {
	if ix == nil {
		return
	}
	ix.anyStale.Store(true)
	if u < 0 || int(u) >= ix.n {
		for c := range ix.stale {
			ix.stale[c] = true
		}
		return
	}
	c := ix.comp[u]
	if ix.stale[c] {
		return // the stale set is ancestor-closed: cone already marked
	}
	ix.stale[c] = true
	queue := []int32{c}
	for len(queue) > 0 {
		x := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		for _, p := range ix.dagIn[x] {
			if !ix.stale[p] {
				ix.stale[p] = true
				queue = append(queue, p)
			}
		}
	}
}

// AnyStale reports whether any label has been invalidated since the build.
func (ix *Index) AnyStale() bool { return ix.anyStale.Load() }

// StaleComps counts stale SCCs (diagnostics).
func (ix *Index) StaleComps() int {
	n := 0
	for _, s := range ix.stale {
		if s {
			n++
		}
	}
	return n
}

// LabelBytes reports the bytes charged against the budget (interval labels
// plus frontier lists).
func (ix *Index) LabelBytes() int64 { return ix.bytes }

// NumSlots reports the local slot count the index was built over —
// adoption code cross-checks it against the fragment being restored.
func (ix *Index) NumSlots() int { return ix.n }

// Policy reports the budget policy the index was built under.
func (ix *Index) Policy() Policy { return ix.policy }

// Hits reports how many Equation calls were answered from the index.
func (ix *Index) Hits() int64 { return ix.hits.Load() }

// Fallbacks reports how many Equation calls could not be answered.
func (ix *Index) Fallbacks() int64 { return ix.fallbacks.Load() }

// AddHits folds retired counters into this index's (used when an index
// replaces a predecessor so cumulative stats survive the swap).
func (ix *Index) AddHits(hits, fallbacks int64) {
	ix.hits.Add(hits)
	ix.fallbacks.Add(fallbacks)
}

// DrainSourceHits zeroes the per-slot hit counters, handing each non-zero
// count to fold. This is the feedback loop of PolicyHits: the owner folds
// the counts into its decayed hotness keyed by global ID (slots renumber;
// global IDs do not) and passes them back through Spec.Hot on the next
// build.
func (ix *Index) DrainSourceHits(fold func(slot int32, hits int64)) {
	for v := range ix.srcHits {
		if h := atomic.SwapInt64(&ix.srcHits[v], 0); h > 0 {
			fold(int32(v), h)
		}
	}
}

const codecMagic = "RIX2"

// MarshalBinary encodes the immutable part of the index (staleness and
// counters are runtime state and deliberately excluded). Because the
// build is deterministic, two replicas that built the same fragment under
// the same spec marshal to identical bytes — the property the parallel
// builder's cross-checks pin.
func (ix *Index) MarshalBinary() ([]byte, error) {
	var b []byte
	b = append(b, codecMagic...)
	u32 := func(v uint32) {
		b = binary.LittleEndian.AppendUint32(b, v)
	}
	i32s := func(vs []int32) {
		for _, v := range vs {
			u32(uint32(v))
		}
	}
	u32(uint32(ix.n))
	u32(uint32(ix.nc))
	b = append(b, byte(ix.policy))
	i32s(ix.comp)
	i32s(ix.post)
	i32s(ix.ivOff)
	u32(uint32(len(ix.ivals)))
	i32s(ix.ivals)
	bits := make([]byte, (ix.nc+7)/8)
	for c, u := range ix.undecided {
		if u {
			bits[c/8] |= 1 << (c % 8)
		}
	}
	b = append(b, bits...)
	for _, row := range ix.dagIn {
		u32(uint32(len(row)))
		i32s(row)
	}
	nf := 0
	for _, row := range ix.fronts {
		if row != nil {
			nf++
		}
	}
	u32(uint32(nf))
	for c, row := range ix.fronts {
		if row == nil {
			continue
		}
		u32(uint32(c))
		u32(uint32(len(row)))
		i32s(row)
	}
	return b, nil
}

// UnmarshalBinary decodes an index encoded by MarshalBinary. Every length
// and reference is validated, so arbitrary input bytes cannot panic or
// force outsized allocations (the fuzz target exercises exactly that).
func UnmarshalBinary(b []byte) (*Index, error) {
	if len(b) < len(codecMagic) || string(b[:len(codecMagic)]) != codecMagic {
		return nil, fmt.Errorf("reachindex: bad magic")
	}
	b = b[len(codecMagic):]
	u32 := func() (uint32, error) {
		if len(b) < 4 {
			return 0, fmt.Errorf("reachindex: truncated")
		}
		v := binary.LittleEndian.Uint32(b)
		b = b[4:]
		return v, nil
	}
	i32s := func(n int) ([]int32, error) {
		if n < 0 || len(b) < 4*n {
			return nil, fmt.Errorf("reachindex: truncated array")
		}
		out := make([]int32, n)
		for i := range out {
			out[i] = int32(binary.LittleEndian.Uint32(b[4*i:]))
		}
		b = b[4*n:]
		return out, nil
	}
	nu, err := u32()
	if err != nil {
		return nil, err
	}
	ncu, err := u32()
	if err != nil {
		return nil, err
	}
	if len(b) < 1 {
		return nil, fmt.Errorf("reachindex: truncated policy")
	}
	pol := Policy(b[0])
	b = b[1:]
	if pol > PolicyHits {
		return nil, fmt.Errorf("reachindex: unknown policy byte %d", pol)
	}
	n, nc := int(nu), int(ncu)
	// Each slot costs 4 bytes in comp and each SCC 4 in post, so both are
	// bounded by the input size — reject before allocating otherwise.
	if n < 0 || nc < 0 || 4*n > len(b) || 4*nc > len(b) {
		return nil, fmt.Errorf("reachindex: implausible sizes n=%d nc=%d", n, nc)
	}
	ix := &Index{n: n, nc: nc, policy: pol, stale: make([]bool, nc), fronts: make([][]int32, nc), srcHits: make([]int64, n)}
	if ix.comp, err = i32s(n); err != nil {
		return nil, err
	}
	for _, c := range ix.comp {
		if c < 0 || int(c) >= nc {
			return nil, fmt.Errorf("reachindex: comp out of range")
		}
	}
	if ix.post, err = i32s(nc); err != nil {
		return nil, err
	}
	if ix.ivOff, err = i32s(nc + 1); err != nil {
		return nil, err
	}
	nivu, err := u32()
	if err != nil {
		return nil, err
	}
	niv := int(nivu)
	if niv < 0 || 4*niv > len(b) {
		return nil, fmt.Errorf("reachindex: implausible ivals size")
	}
	if len(ix.ivOff) > 0 && (ix.ivOff[0] != 0 || int(ix.ivOff[nc]) != niv) {
		return nil, fmt.Errorf("reachindex: bad interval offsets")
	}
	for c := 0; c < nc; c++ {
		d := ix.ivOff[c+1] - ix.ivOff[c]
		if d < 0 || d%2 != 0 {
			return nil, fmt.Errorf("reachindex: bad interval offsets")
		}
	}
	if ix.ivals, err = i32s(niv); err != nil {
		return nil, err
	}
	nbits := (nc + 7) / 8
	if len(b) < nbits {
		return nil, fmt.Errorf("reachindex: truncated undecided bitmap")
	}
	ix.undecided = make([]bool, nc)
	for c := 0; c < nc; c++ {
		ix.undecided[c] = b[c/8]&(1<<(c%8)) != 0
	}
	b = b[nbits:]
	ix.dagIn = make([][]int32, nc)
	for c := 0; c < nc; c++ {
		lu, err := u32()
		if err != nil {
			return nil, err
		}
		row, err := i32s(int(lu))
		if err != nil {
			return nil, err
		}
		for _, p := range row {
			if p < 0 || int(p) >= nc {
				return nil, fmt.Errorf("reachindex: dag edge out of range")
			}
		}
		ix.dagIn[c] = row
	}
	nf, err := u32()
	if err != nil {
		return nil, err
	}
	for i := 0; i < int(nf); i++ {
		cu, err := u32()
		if err != nil {
			return nil, err
		}
		c := int32(cu)
		if c < 0 || int(c) >= nc {
			return nil, fmt.Errorf("reachindex: frontier comp out of range")
		}
		lu, err := u32()
		if err != nil {
			return nil, err
		}
		row, err := i32s(int(lu))
		if err != nil {
			return nil, err
		}
		for _, s := range row {
			if s < 0 || int(s) >= n {
				return nil, fmt.Errorf("reachindex: frontier slot out of range")
			}
		}
		if len(row) == 0 {
			row = emptyFront // i32s(0) already returns non-nil, but be explicit
		}
		ix.fronts[c] = row
		ix.bytes += int64(len(row))*4 + 16
	}
	ix.bytes += int64(niv) * 4
	return ix, nil
}
