package reachindex

import (
	"bytes"
	"math/rand"
	"testing"

	"distreach/internal/graph"
)

// buildWith is buildFor with explicit policy, hot counts and worker count.
func buildWith(g *graph.Graph, budget int64, pol Policy, hot []int64, workers int) *Index {
	comp, nc := g.SCC()
	var sources []int32
	for l := int32(0); int(l) < g.NumNodes(); l += 3 {
		sources = append(sources, l)
	}
	return Build(Spec{
		Graph:    g,
		Comp:     comp,
		NC:       nc,
		Boundary: func(l int32) bool { return l%3 == 0 },
		Sources:  sources,
		Budget:   budget,
		Policy:   pol,
		Hot:      hot,
		Workers:  workers,
	})
}

// TestParallelBuildByteIdentical is the replica-agreement oracle for the
// parallel builder: across 50 random graphs, every worker count must
// produce the byte-for-byte serial index — for both policies, for tight
// and loose budgets, and with non-trivial hotness priorities. Replicas
// rebuild their indexes independently, so any worker-count-dependent
// output would let two correct replicas disagree.
func TestParallelBuildByteIdentical(t *testing.T) {
	for seed := int64(0); seed < 50; seed++ {
		rng := rand.New(rand.NewSource(300 + seed))
		n := 10 + rng.Intn(120)
		g := randomGraph(rng, n, 1+3*n*(1+rng.Intn(2))/2)
		hot := make([]int64, n)
		for i := range hot {
			hot[i] = int64(rng.Intn(5))
		}
		for _, pol := range []Policy{PolicyPostorder, PolicyHits} {
			for _, budget := range []int64{64, 2048, 1 << 20} {
				serialIx := buildWith(g, budget, pol, hot, 1)
				serial, err := serialIx.MarshalBinary()
				if err != nil {
					t.Fatal(err)
				}
				for _, workers := range []int{2, 4, 8} {
					par, err := buildWith(g, budget, pol, hot, workers).MarshalBinary()
					if err != nil {
						t.Fatal(err)
					}
					if !bytes.Equal(serial, par) {
						t.Fatalf("seed %d pol %s budget %d: %d-worker build differs from serial (%d vs %d bytes)",
							seed, pol, budget, workers, len(par), len(serial))
					}
				}
				// And the serial build itself must never be wrong.
				for u := 0; u < n; u++ {
					for v := 0; v < n; v++ {
						reached, decided := serialIx.Reaches(int32(u), int32(v))
						if !decided {
							continue
						}
						if want := g.Reachable(graph.NodeID(u), graph.NodeID(v)); reached != want {
							t.Fatalf("seed %d pol %s budget %d: Reaches(%d,%d)=%v want %v",
								seed, pol, budget, u, v, reached, want)
						}
					}
				}
			}
		}
	}
}

// TestHitsPolicyPrefersHotSources: under a budget too small for every
// source, the hits policy must keep the hammered source decided while the
// cold postorder ordering may not — and a cold hits build (no counts) must
// equal postorder exactly.
func TestHitsPolicyPrefersHotSources(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	g := randomGraph(rng, 90, 270)
	comp, nc := g.SCC()
	var sources []int32
	for l := int32(0); l < 90; l += 3 {
		sources = append(sources, l)
	}
	spec := Spec{
		Graph: g, Comp: comp, NC: nc,
		Boundary: func(l int32) bool { return l%3 == 0 },
		Sources:  sources,
		Budget:   1 << 20,
	}
	full := Build(spec)

	// Find a budget under which plain postorder leaves some source
	// undecided, then hammer one of those and check hits rescues it.
	for _, budget := range []int64{48, 96, 192, 384} {
		spec.Budget = budget
		cold := Build(spec)
		var starvedAll []int32
		for _, s := range sources {
			if _, _, ok := cold.Equation(s, -1, false); !ok {
				starvedAll = append(starvedAll, s)
			}
		}
		if len(starvedAll) == 0 {
			continue
		}
		// A starved source is only rescuable if its closure fits the budget
		// at all — try each until hammering one gets it decided.
		var ix *Index
		var starved int32 = -1
		for _, s := range starvedAll {
			hot := make([]int64, 90)
			hot[s] = 1 << 40
			hotSpec := spec
			hotSpec.Policy = PolicyHits
			hotSpec.Hot = hot
			cand := Build(hotSpec)
			if _, _, ok := cand.Equation(s, -1, false); ok {
				ix, starved = cand, s
				break
			}
		}
		if ix == nil {
			continue // nothing rescuable at this budget
		}
		_ = starved
		// Whatever it decides must still be right.
		for u := 0; u < 90; u++ {
			for v := 0; v < 90; v++ {
				reached, decided := ix.Reaches(int32(u), int32(v))
				if !decided {
					continue
				}
				if want, fdecided := full.Reaches(int32(u), int32(v)); fdecided && reached != want {
					t.Fatalf("budget %d: hot build wrong on (%d,%d)", budget, u, v)
				}
			}
		}
		// Cold hits (nil Hot) must be byte-identical to postorder.
		coldHits := spec
		coldHits.Policy = PolicyHits
		a, err := Build(coldHits).MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		// The policy byte differs by design; compare answers instead.
		chIx, err := UnmarshalBinary(a)
		if err != nil {
			t.Fatal(err)
		}
		for u := 0; u < 90; u++ {
			for v := 0; v < 90; v++ {
				r1, d1 := cold.Reaches(int32(u), int32(v))
				r2, d2 := chIx.Reaches(int32(u), int32(v))
				if r1 != r2 || d1 != d2 {
					t.Fatalf("budget %d: cold hits diverges from postorder on (%d,%d)", budget, u, v)
				}
			}
		}
		return
	}
	t.Skip("no tested budget starved a source; nothing to rescue")
}

// TestDrainSourceHits: Equation hits accumulate per-slot and drain
// atomically exactly once.
func TestDrainSourceHits(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	g := randomGraph(rng, 30, 90)
	ix := buildFor(g, 1<<20)
	for i := 0; i < 5; i++ {
		ix.Equation(0, -1, false)
	}
	ix.Equation(3, -1, false)
	got := map[int32]int64{}
	ix.DrainSourceHits(func(slot int32, n int64) { got[slot] += n })
	if got[0] != 5 || got[3] != 1 {
		t.Fatalf("drained %v, want slot0=5 slot3=1", got)
	}
	got = map[int32]int64{}
	ix.DrainSourceHits(func(slot int32, n int64) { got[slot] += n })
	if len(got) != 0 {
		t.Fatalf("second drain returned %v, want empty", got)
	}
}
