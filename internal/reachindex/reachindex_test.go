package reachindex

import (
	"math/rand"
	"sort"
	"testing"

	"distreach/internal/graph"
)

// randomGraph builds a random directed graph with n nodes and ~m edges.
func randomGraph(rng *rand.Rand, n, m int) *graph.Graph {
	b := graph.NewBuilder(n)
	b.AddNodes(n, "A")
	for i := 0; i < m; i++ {
		b.AddEdge(graph.NodeID(rng.Intn(n)), graph.NodeID(rng.Intn(n)))
	}
	return b.MustBuild()
}

// buildFor indexes g with every third slot marked boundary/source — a
// fragment-shaped setup without needing a real Fragmentation.
func buildFor(g *graph.Graph, budget int64) *Index {
	comp, nc := g.SCC()
	var sources []int32
	for l := int32(0); int(l) < g.NumNodes(); l += 3 {
		sources = append(sources, l)
	}
	return Build(Spec{
		Graph:    g,
		Comp:     comp,
		NC:       nc,
		Boundary: func(l int32) bool { return l%3 == 0 },
		Sources:  sources,
		Budget:   budget,
	})
}

func TestReachesMatchesGraph(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 10 + rng.Intn(50)
		g := randomGraph(rng, n, 3*n)
		ix := buildFor(g, 1<<30)
		for u := 0; u < n; u++ {
			for v := 0; v < n; v++ {
				reached, decided := ix.Reaches(int32(u), int32(v))
				if !decided {
					t.Fatalf("seed %d: (%d,%d) undecided under unlimited budget", seed, u, v)
				}
				if want := g.Reachable(graph.NodeID(u), graph.NodeID(v)); reached != want {
					t.Fatalf("seed %d: Reaches(%d,%d)=%v want %v", seed, u, v, reached, want)
				}
			}
		}
	}
}

func TestBudgetNeverWrong(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g := randomGraph(rng, 120, 360)
	decidedSome := false
	for _, budget := range []int64{32, 128, 1024, 1 << 20} {
		ix := buildFor(g, budget)
		if ix.LabelBytes() > budget {
			t.Fatalf("budget %d: label bytes %d exceed it", budget, ix.LabelBytes())
		}
		for u := 0; u < 120; u++ {
			for v := 0; v < 120; v++ {
				reached, decided := ix.Reaches(int32(u), int32(v))
				if !decided {
					continue
				}
				decidedSome = true
				if want := g.Reachable(graph.NodeID(u), graph.NodeID(v)); reached != want {
					t.Fatalf("budget %d: Reaches(%d,%d)=%v want %v", budget, u, v, reached, want)
				}
			}
		}
	}
	if !decidedSome {
		t.Fatal("no budget decided anything")
	}
}

// referenceFrontier recomputes the frontier-cut variable list the slow way
// (independent BFS), to pin Equation's precomputed lists.
func referenceFrontier(g *graph.Graph, comp []int32, boundary func(int32) bool, v int32) []int32 {
	seen := make([]bool, g.NumNodes())
	queue := []int32{v}
	seen[v] = true
	var out []int32
	for len(queue) > 0 {
		x := queue[0]
		queue = queue[1:]
		if x != v && boundary(x) && comp[x] != comp[v] {
			out = append(out, x)
			continue
		}
		for _, w := range g.Out(graph.NodeID(x)) {
			if !seen[w] {
				seen[w] = true
				queue = append(queue, int32(w))
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func TestEquationMatchesReferenceBFS(t *testing.T) {
	boundary := func(l int32) bool { return l%3 == 0 }
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(100 + seed))
		n := 12 + rng.Intn(60)
		g := randomGraph(rng, n, 3*n)
		comp, _ := g.SCC()
		ix := buildFor(g, 1<<30)
		for l := int32(0); int(l) < n; l += 3 {
			vars, _, ok := ix.Equation(l, -1, false)
			if !ok {
				t.Fatalf("seed %d: source %d not indexed under unlimited budget", seed, l)
			}
			want := referenceFrontier(g, comp, boundary, l)
			if len(vars) != len(want) {
				t.Fatalf("seed %d: source %d frontier %v want %v", seed, l, vars, want)
			}
			for i := range vars {
				if vars[i] != want[i] {
					t.Fatalf("seed %d: source %d frontier %v want %v", seed, l, vars, want)
				}
			}
			// reachesT must track label-decided local reachability.
			for tt := int32(0); int(tt) < n; tt++ {
				_, reachesT, ok := ix.Equation(l, tt, true)
				if !ok {
					t.Fatalf("seed %d: source %d lost its index entry", seed, l)
				}
				if want := g.Reachable(graph.NodeID(l), graph.NodeID(tt)); reachesT != want {
					t.Fatalf("seed %d: Equation(%d, t=%d) reachesT=%v want %v", seed, l, tt, reachesT, want)
				}
			}
		}
	}
}

func TestMarkDirtyAncestorCone(t *testing.T) {
	// 0 -> 1 -> 2: dirtying 1 must invalidate its ancestors (0, 1) but
	// leave the untouched descendant 2 decided.
	b := graph.NewBuilder(3)
	b.AddNodes(3, "A")
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	g := b.MustBuild()
	comp, nc := g.SCC()
	ix := Build(Spec{Graph: g, Comp: comp, NC: nc, Budget: 1 << 20})
	if _, decided := ix.Reaches(0, 2); !decided {
		t.Fatal("fresh index undecided")
	}
	ix.MarkDirty(1)
	if !ix.AnyStale() {
		t.Fatal("AnyStale false after MarkDirty")
	}
	for _, u := range []int32{0, 1} {
		if _, decided := ix.Reaches(u, 2); decided {
			t.Fatalf("slot %d should be stale", u)
		}
	}
	if reached, decided := ix.Reaches(2, 0); !decided || reached {
		t.Fatalf("descendant 2 should stay decided (got decided=%v reached=%v)", decided, reached)
	}
	// Out-of-range slots mark everything.
	ix2 := Build(Spec{Graph: g, Comp: comp, NC: nc, Budget: 1 << 20})
	ix2.MarkDirty(99)
	if _, decided := ix2.Reaches(2, 0); decided {
		t.Fatal("out-of-range MarkDirty should stale the whole index")
	}
}

func TestCodecRoundtrip(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		rng := rand.New(rand.NewSource(200 + seed))
		n := 10 + rng.Intn(40)
		g := randomGraph(rng, n, 2*n)
		ix := buildFor(g, 1<<20)
		enc, err := ix.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		dec, err := UnmarshalBinary(enc)
		if err != nil {
			t.Fatalf("seed %d: decode: %v", seed, err)
		}
		for u := 0; u < n; u++ {
			for v := 0; v < n; v++ {
				r1, d1 := ix.Reaches(int32(u), int32(v))
				r2, d2 := dec.Reaches(int32(u), int32(v))
				if r1 != r2 || d1 != d2 {
					t.Fatalf("seed %d: decoded Reaches(%d,%d) diverges", seed, u, v)
				}
			}
		}
		// MarkDirty must work on the decoded form too (dagIn roundtrips).
		if n > 0 {
			dec.MarkDirty(0)
			if !dec.AnyStale() {
				t.Fatal("decoded index ignored MarkDirty")
			}
		}
	}
}

// FuzzIndexLabels fuzzes both directions: arbitrary bytes through the
// codec must never panic, and an index built from a fuzz-shaped graph must
// agree with direct graph reachability on every decided answer and survive
// a codec roundtrip.
func FuzzIndexLabels(f *testing.F) {
	f.Add([]byte{3, 0, 1, 1, 2, 2, 0}, uint16(64))
	f.Add([]byte{10, 0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 0}, uint16(4096))
	f.Add([]byte{}, uint16(0))
	f.Fuzz(func(t *testing.T, data []byte, rawBudget uint16) {
		// Hostile decode: must error or succeed, never panic.
		if ix, err := UnmarshalBinary(data); err == nil {
			ix.Reaches(0, 0)
			ix.MarkDirty(0)
		}
		if len(data) == 0 {
			return
		}
		n := 1 + int(data[0])%24
		b := graph.NewBuilder(n)
		b.AddNodes(n, "A")
		for i := 1; i+1 < len(data); i += 2 {
			b.AddEdge(graph.NodeID(int(data[i])%n), graph.NodeID(int(data[i+1])%n))
		}
		g := b.MustBuild()
		budget := int64(rawBudget)
		if budget == 0 {
			budget = 1 << 20
		}
		ix := buildFor(g, budget)
		check := func(ix *Index, what string) {
			for u := 0; u < n; u++ {
				for v := 0; v < n; v++ {
					reached, decided := ix.Reaches(int32(u), int32(v))
					if !decided {
						continue
					}
					if want := g.Reachable(graph.NodeID(u), graph.NodeID(v)); reached != want {
						t.Fatalf("%s: Reaches(%d,%d)=%v want %v", what, u, v, reached, want)
					}
				}
			}
		}
		check(ix, "built")
		enc, err := ix.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		dec, err := UnmarshalBinary(enc)
		if err != nil {
			t.Fatalf("roundtrip decode: %v", err)
		}
		check(dec, "decoded")
	})
}
