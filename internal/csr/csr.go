// Package csr implements the memory-compact row storage behind graphs
// and fragments: a CSR-style (compressed sparse row) immutable base — one
// offsets array and one flat targets array instead of a separately
// allocated slice per node — plus a small mutable overlay that absorbs
// live mutations. Reads hit the overlay first and fall back to zero-copy
// views into the base; writes copy the touched row out of the base once
// (copy-on-write) and mutate the copy. Compact folds the overlay back
// into a fresh base, restoring the two-array layout; the serving runtime
// calls it at rebalance and snapshot time, when it already holds the
// exclusivity those epoch-swap points guarantee.
//
// The point of the exercise is bytes per node: a [][]int32 adjacency
// costs a 24-byte slice header per node plus a separately size-classed
// allocation per row, and the map-based fragment index costs tens of
// bytes per entry; the CSR base costs 4 bytes per node (offset) plus 4
// bytes per edge, exactly.
package csr

import "sort"

// Store holds n rows of T. The zero value is not usable; construct with
// New or FromRows. Store is not safe for concurrent mutation; callers
// serialize writers against readers exactly as they do for the structures
// built on top (graph.Graph, fragment.Fragment).
type Store[T ~int32] struct {
	// Immutable base: row i of the base is tgts[offs[i]:offs[i+1]].
	// len(offs) == baseN+1. Never mutated in place after construction —
	// clones share it.
	offs []int32
	tgts []T

	n int // current row count (may differ from baseN after mutations)

	// Overlay: over holds copy-on-write replacements for base rows
	// (presence in the map is what counts — a nil value is an empty row);
	// extra holds rows appended past the base.
	over  map[int32][]T
	extra [][]T
}

// New returns an empty store with zero rows.
func New[T ~int32]() *Store[T] { return &Store[T]{offs: []int32{0}} }

// FromRows builds a compact store whose base is a copy of rows.
func FromRows[T ~int32](rows [][]T) *Store[T] {
	total := 0
	for _, r := range rows {
		total += len(r)
	}
	offs := make([]int32, len(rows)+1)
	tgts := make([]T, 0, total)
	for i, r := range rows {
		offs[i] = int32(len(tgts))
		tgts = append(tgts, r...)
	}
	offs[len(rows)] = int32(len(tgts))
	return &Store[T]{offs: offs, tgts: tgts, n: len(rows)}
}

func (s *Store[T]) baseN() int { return len(s.offs) - 1 }

// NumRows reports the current number of rows.
func (s *Store[T]) NumRows() int { return s.n }

// Row returns row i. The returned slice is a view — the caller must not
// modify it, and must not hold it across a Compact.
func (s *Store[T]) Row(i int32) []T {
	if int(i) >= s.baseN() {
		return s.extra[int(i)-s.baseN()]
	}
	if r, ok := s.over[i]; ok {
		return r
	}
	return s.tgts[s.offs[i]:s.offs[i+1]]
}

// RowLen reports len(Row(i)) without materializing anything.
func (s *Store[T]) RowLen(i int32) int {
	if int(i) >= s.baseN() {
		return len(s.extra[int(i)-s.baseN()])
	}
	if r, ok := s.over[i]; ok {
		return len(r)
	}
	return int(s.offs[i+1] - s.offs[i])
}

// put installs row as the content of existing row i.
func (s *Store[T]) put(i int32, row []T) {
	if int(i) >= s.baseN() {
		s.extra[int(i)-s.baseN()] = row
		return
	}
	if s.over == nil {
		s.over = make(map[int32][]T)
	}
	s.over[i] = row
}

// SetRow replaces row i (which must exist) with row. The store takes
// ownership of the slice.
func (s *Store[T]) SetRow(i int32, row []T) { s.put(i, row) }

// AppendRow adds row at index NumRows(), taking ownership of the slice.
func (s *Store[T]) AppendRow(row []T) {
	if s.n < s.baseN() {
		// A Truncate shrank below the base; reuse the slot via the overlay.
		s.put(int32(s.n), row)
	} else {
		s.extra = append(s.extra, row)
	}
	s.n++
}

// Truncate drops every row at index ≥ n.
func (s *Store[T]) Truncate(n int) {
	for i := n; i < s.n && i < s.baseN(); i++ {
		s.put(int32(i), nil)
	}
	if keep := n - s.baseN(); keep < len(s.extra) {
		if keep < 0 {
			keep = 0
		}
		for i := keep; i < len(s.extra); i++ {
			s.extra[i] = nil
		}
		s.extra = s.extra[:keep]
	}
	s.n = n
}

// Append pushes v onto the end of row i.
func (s *Store[T]) Append(i int32, v T) {
	if int(i) >= s.baseN() {
		s.extra[int(i)-s.baseN()] = append(s.extra[int(i)-s.baseN()], v)
		return
	}
	if r, ok := s.over[i]; ok {
		s.over[i] = append(r, v)
		return
	}
	base := s.tgts[s.offs[i]:s.offs[i+1]]
	row := make([]T, len(base)+1)
	copy(row, base)
	row[len(base)] = v
	s.put(i, row)
}

// InsertSorted adds v to ascending row i unless already present,
// reporting whether it inserted.
func (s *Store[T]) InsertSorted(i int32, v T) bool {
	r := s.Row(i)
	at := sort.Search(len(r), func(j int) bool { return r[j] >= v })
	if at < len(r) && r[at] == v {
		return false
	}
	row := make([]T, len(r)+1)
	copy(row, r[:at])
	row[at] = v
	copy(row[at+1:], r[at:])
	s.put(i, row)
	return true
}

// RemoveSorted deletes v from ascending row i, reporting whether it was
// present.
func (s *Store[T]) RemoveSorted(i int32, v T) bool {
	r := s.Row(i)
	at := sort.Search(len(r), func(j int) bool { return r[j] >= v })
	if at >= len(r) || r[at] != v {
		return false
	}
	s.removeAt(i, r, at)
	return true
}

// RemoveFirst deletes the first occurrence of v in row i, reporting
// whether it was present.
func (s *Store[T]) RemoveFirst(i int32, v T) bool {
	r := s.Row(i)
	for at, w := range r {
		if w == v {
			s.removeAt(i, r, at)
			return true
		}
	}
	return false
}

// removeAt drops element at of row i (r is Row(i)), mutating in place
// when the row is overlay-owned and copying out of the base otherwise.
func (s *Store[T]) removeAt(i int32, r []T, at int) {
	if s.owned(i) {
		s.put(i, append(r[:at], r[at+1:]...))
		return
	}
	row := make([]T, len(r)-1)
	copy(row, r[:at])
	copy(row[at:], r[at+1:])
	s.put(i, row)
}

// owned reports whether row i lives in the overlay (safe to mutate in
// place).
func (s *Store[T]) owned(i int32) bool {
	if int(i) >= s.baseN() {
		return true
	}
	_, ok := s.over[i]
	return ok
}

// ReplaceAll rewrites every occurrence of from to to, across all rows.
func (s *Store[T]) ReplaceAll(from, to T) {
	for i := 0; i < s.n; i++ {
		r := s.Row(int32(i))
		for j, w := range r {
			if w != from {
				continue
			}
			if !s.owned(int32(i)) {
				r = append([]T(nil), r...)
				s.put(int32(i), r)
			}
			r[j] = to
		}
	}
}

// Contains reports whether any row holds v.
func (s *Store[T]) Contains(v T) bool {
	for i := 0; i < s.n; i++ {
		for _, w := range s.Row(int32(i)) {
			if w == v {
				return true
			}
		}
	}
	return false
}

// OverlayRows reports how many rows currently live outside the base —
// the compaction debt.
func (s *Store[T]) OverlayRows() int { return len(s.over) + len(s.extra) }

// Compact folds the overlay into a fresh immutable base and drops it.
// Row views handed out earlier keep reading the old base; new reads see
// the identical content in two flat arrays.
func (s *Store[T]) Compact() {
	if s.OverlayRows() == 0 && s.n == s.baseN() {
		return // already compact
	}
	total := 0
	for i := 0; i < s.n; i++ {
		total += s.RowLen(int32(i))
	}
	offs := make([]int32, s.n+1)
	tgts := make([]T, 0, total)
	for i := 0; i < s.n; i++ {
		offs[i] = int32(len(tgts))
		tgts = append(tgts, s.Row(int32(i))...)
	}
	offs[s.n] = int32(len(tgts))
	s.offs, s.tgts = offs, tgts
	s.over, s.extra = nil, nil
}

// Clone returns an independent copy. The immutable base is shared (it is
// never written in place); overlay rows are deep-copied.
func (s *Store[T]) Clone() *Store[T] {
	c := &Store[T]{offs: s.offs, tgts: s.tgts, n: s.n}
	if len(s.over) > 0 {
		c.over = make(map[int32][]T, len(s.over))
		for i, r := range s.over {
			c.over[i] = append([]T(nil), r...)
		}
	}
	if len(s.extra) > 0 {
		c.extra = make([][]T, len(s.extra))
		for i, r := range s.extra {
			c.extra[i] = append([]T(nil), r...)
		}
	}
	return c
}

// Bytes estimates the resident bytes of the store: exact for the base,
// modeled for the overlay (24-byte slice header plus 4 bytes per element
// per overlay row, ~48 bytes per map entry).
func (s *Store[T]) Bytes() int64 {
	b := int64(cap(s.offs))*4 + int64(cap(s.tgts))*4
	for _, r := range s.over {
		b += 48 + 24 + int64(cap(r))*4
	}
	for _, r := range s.extra {
		b += 24 + int64(cap(r))*4
	}
	return b
}
