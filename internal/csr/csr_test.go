package csr

import (
	"reflect"
	"testing"
)

// model mirrors a Store as plain [][]int32 for cross-checking.
type model [][]int32

func (m model) equal(t *testing.T, s *Store[int32], step int) {
	t.Helper()
	if s.NumRows() != len(m) {
		t.Fatalf("step %d: rows %d, want %d", step, s.NumRows(), len(m))
	}
	for i := range m {
		got := s.Row(int32(i))
		if len(got) != len(m[i]) || (len(got) > 0 && !reflect.DeepEqual(got, m[i])) {
			t.Fatalf("step %d: row %d = %v, want %v", step, i, got, m[i])
		}
		if s.RowLen(int32(i)) != len(m[i]) {
			t.Fatalf("step %d: RowLen(%d) = %d, want %d", step, i, s.RowLen(int32(i)), len(m[i]))
		}
	}
}

func TestStoreRandomizedAgainstModel(t *testing.T) {
	// A deterministic xorshift so the sequence is reproducible.
	state := uint64(0x9E3779B97F4A7C15)
	rnd := func(n int) int {
		state ^= state << 13
		state ^= state >> 7
		state ^= state << 17
		return int(state % uint64(n))
	}
	for trial := 0; trial < 30; trial++ {
		nrows := 1 + rnd(8)
		rows := make(model, nrows)
		for i := range rows {
			for j := 0; j < rnd(6); j++ {
				rows[i] = append(rows[i], int32(rnd(40)))
			}
		}
		s := FromRows(rows)
		m := make(model, len(rows))
		for i := range rows {
			m[i] = append([]int32(nil), rows[i]...)
		}
		for step := 0; step < 200; step++ {
			if len(m) == 0 {
				s.AppendRow(nil)
				m = append(m, nil)
			}
			i := int32(rnd(len(m)))
			v := int32(rnd(40))
			switch rnd(10) {
			case 0:
				s.Append(i, v)
				m[i] = append(m[i], v)
			case 1:
				row := []int32{v, v + 1}
				s.SetRow(i, append([]int32(nil), row...))
				m[i] = row
			case 2:
				s.AppendRow([]int32{v})
				m = append(m, []int32{v})
			case 3:
				if len(m) > 1 {
					n := 1 + rnd(len(m))
					s.Truncate(n)
					m = m[:n]
				}
			case 4:
				got := s.RemoveFirst(i, v)
				want := false
				for at, w := range m[i] {
					if w == v {
						m[i] = append(append([]int32(nil), m[i][:at]...), m[i][at+1:]...)
						want = true
						break
					}
				}
				if got != want {
					t.Fatalf("trial %d step %d: RemoveFirst=%v, want %v", trial, step, got, want)
				}
			case 5:
				s.ReplaceAll(v, v+1)
				for x := range m {
					for j, w := range m[x] {
						if w == v {
							if len(m[x]) > 0 { // force a private copy like the store does
								m[x] = append([]int32(nil), m[x]...)
							}
							m[x][j] = v + 1
						}
					}
				}
			case 6:
				got := s.Contains(v)
				want := false
				for _, r := range m {
					for _, w := range r {
						if w == v {
							want = true
						}
					}
				}
				if got != want {
					t.Fatalf("trial %d step %d: Contains=%v, want %v", trial, step, got, want)
				}
			case 7:
				s.Compact()
				if s.OverlayRows() != 0 {
					t.Fatalf("trial %d step %d: overlay not empty after Compact", trial, step)
				}
			case 8:
				s2 := s.Clone()
				m.equal(t, s2, step)
				s2.Append(i, 99) // must not affect the original
			default:
				s.SetRow(i, nil)
				m[i] = nil
			}
			m.equal(t, s, step)
		}
	}
}

func TestSortedOps(t *testing.T) {
	s := FromRows([][]int32{{1, 3, 5}, nil})
	if !s.InsertSorted(0, 4) || !reflect.DeepEqual(s.Row(0), []int32{1, 3, 4, 5}) {
		t.Fatalf("insert 4: %v", s.Row(0))
	}
	if s.InsertSorted(0, 3) {
		t.Fatal("duplicate insert reported true")
	}
	if !s.RemoveSorted(0, 1) || !reflect.DeepEqual(s.Row(0), []int32{3, 4, 5}) {
		t.Fatalf("remove 1: %v", s.Row(0))
	}
	if s.RemoveSorted(0, 99) {
		t.Fatal("absent remove reported true")
	}
	if !s.InsertSorted(1, 7) || !reflect.DeepEqual(s.Row(1), []int32{7}) {
		t.Fatalf("insert into empty row: %v", s.Row(1))
	}
	s.Compact()
	if !reflect.DeepEqual(s.Row(0), []int32{3, 4, 5}) || !reflect.DeepEqual(s.Row(1), []int32{7}) {
		t.Fatalf("after compact: %v %v", s.Row(0), s.Row(1))
	}
	if s.Bytes() <= 0 {
		t.Fatal("Bytes() not positive")
	}
}

func TestTruncateBelowBaseAndRegrow(t *testing.T) {
	s := FromRows([][]int32{{1}, {2}, {3}})
	s.Truncate(1)
	if s.NumRows() != 1 || !reflect.DeepEqual(s.Row(0), []int32{1}) {
		t.Fatalf("after truncate: n=%d row0=%v", s.NumRows(), s.Row(0))
	}
	s.AppendRow([]int32{9})
	if s.NumRows() != 2 || !reflect.DeepEqual(s.Row(1), []int32{9}) {
		t.Fatalf("regrown slot: n=%d row1=%v", s.NumRows(), s.Row(1))
	}
	s.AppendRow([]int32{8})
	s.AppendRow([]int32{7})
	if s.NumRows() != 4 || !reflect.DeepEqual(s.Row(3), []int32{7}) {
		t.Fatalf("extra rows: n=%d row3=%v", s.NumRows(), s.Row(3))
	}
	s.Compact()
	want := [][]int32{{1}, {9}, {8}, {7}}
	for i, w := range want {
		if !reflect.DeepEqual(s.Row(int32(i)), w) {
			t.Fatalf("post-compact row %d = %v, want %v", i, s.Row(int32(i)), w)
		}
	}
}

func TestNewIsEmpty(t *testing.T) {
	s := New[int32]()
	if s.NumRows() != 0 || s.Bytes() < 0 {
		t.Fatalf("New: %d rows", s.NumRows())
	}
	s.AppendRow([]int32{1, 2})
	if !reflect.DeepEqual(s.Row(0), []int32{1, 2}) {
		t.Fatal("append into empty store")
	}
}
