package oplog

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"distreach/internal/fragment"
	"distreach/internal/gen"
	"distreach/internal/graph"
)

func rec(lsn uint64, u, v graph.NodeID) Record {
	return Record{LSN: lsn, Ops: []fragment.Op{{Kind: fragment.OpInsertEdge, U: u, V: v}}}
}

// TestLogAppendReadRecover: records round-trip through the segmented log,
// survive a close/reopen, and the recovered last LSN matches.
func TestLogAppendReadRecover(t *testing.T) {
	dir := t.TempDir()
	l, err := OpenLog(dir, LogOptions{Fsync: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(1); i <= 20; i++ {
		if err := l.Append(rec(i, graph.NodeID(i), graph.NodeID(i+1))); err != nil {
			t.Fatal(err)
		}
	}
	// Out-of-order and gapped appends are refused.
	if err := l.Append(rec(20, 0, 1)); err == nil {
		t.Fatal("duplicate LSN append must fail")
	}
	if err := l.Append(rec(25, 0, 1)); err == nil {
		t.Fatal("gapped LSN append must fail")
	}
	recs, ok, err := l.ReadFrom(7)
	if err != nil || !ok {
		t.Fatalf("ReadFrom(7): ok=%v err=%v", ok, err)
	}
	if len(recs) != 14 || recs[0].LSN != 7 || recs[13].LSN != 20 {
		t.Fatalf("ReadFrom(7) returned %d records [%d..%d]", len(recs), recs[0].LSN, recs[len(recs)-1].LSN)
	}
	if recs[0].Ops[0].U != 7 {
		t.Fatalf("record 7 payload drifted: %+v", recs[0].Ops[0])
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2, err := OpenLog(dir, LogOptions{Fsync: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if l2.LastLSN() != 20 {
		t.Fatalf("recovered LSN %d, want 20", l2.LastLSN())
	}
	if err := l2.Append(rec(21, 1, 2)); err != nil {
		t.Fatal(err)
	}
}

// TestLogRotationAndTruncate: tiny segments force rotation; truncation
// after a snapshot drops whole covered segments but never the active one,
// and ReadFrom reports the missing prefix as unavailable.
func TestLogRotationAndTruncate(t *testing.T) {
	dir := t.TempDir()
	l, err := OpenLog(dir, LogOptions{Fsync: SyncNever, SegmentBytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	for i := uint64(1); i <= 40; i++ {
		if err := l.Append(rec(i, 0, 1)); err != nil {
			t.Fatal(err)
		}
	}
	segs, bytes := l.Stats()
	if segs < 3 || bytes == 0 {
		t.Fatalf("expected several segments, got %d (%d bytes)", segs, bytes)
	}
	if err := l.TruncateThrough(30); err != nil {
		t.Fatal(err)
	}
	after, _ := l.Stats()
	if after >= segs {
		t.Fatalf("truncation kept all %d segments", after)
	}
	if _, ok, err := l.ReadFrom(2); ok || err != nil {
		t.Fatalf("ReadFrom(2) after truncation: ok=%v err=%v, want unavailable", ok, err)
	}
	// The suffix past the truncation point must still be readable.
	recs, ok, err := l.ReadFrom(35)
	if err != nil || !ok || len(recs) != 6 || recs[0].LSN != 35 {
		t.Fatalf("ReadFrom(35): ok=%v err=%v len=%d", ok, err, len(recs))
	}
	if l.LastLSN() != 40 {
		t.Fatalf("LastLSN %d after truncation, want 40", l.LastLSN())
	}
}

// TestLogTornTailTruncated: a crash mid-append leaves a torn record at the
// tail; reopening drops it and the next append overwrites the garbage.
func TestLogTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	l, err := OpenLog(dir, LogOptions{Fsync: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(1); i <= 5; i++ {
		if err := l.Append(rec(i, 0, 1)); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()
	names, _ := filepath.Glob(filepath.Join(dir, "seg-*.wal"))
	if len(names) != 1 {
		t.Fatalf("expected 1 segment, got %d", len(names))
	}
	f, err := os.OpenFile(names[0], os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte{42, 0, 0, 0, 9, 9}) // torn record: size prefix, partial body
	f.Close()

	l2, err := OpenLog(dir, LogOptions{Fsync: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if l2.LastLSN() != 5 {
		t.Fatalf("recovered LSN %d past a torn tail, want 5", l2.LastLSN())
	}
	if err := l2.Append(rec(6, 0, 1)); err != nil {
		t.Fatal(err)
	}
	recs, ok, err := l2.ReadFrom(1)
	if err != nil || !ok || len(recs) != 6 {
		t.Fatalf("after torn-tail recovery: ok=%v err=%v len=%d", ok, err, len(recs))
	}
}

// TestSequencerResumesAfterRestart is the regression for the forked-order
// bug: the old scheme re-randomized its sequence base on every restart, so
// replicas could not recognize re-sent batches. A durable sequencer must
// resume exactly where the previous incarnation stopped — even when a
// snapshot has truncated every record away, because the segment header
// pins the LSN.
func TestSequencerResumesAfterRestart(t *testing.T) {
	dir := t.TempDir()
	st, err := OpenStore(dir, LogOptions{Fsync: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	seq := NewDurableSequencer(st)
	for i := 0; i < 5; i++ {
		if _, err := seq.Submit([]fragment.Op{{Kind: fragment.OpInsertEdge, U: 0, V: 1}}, func(uint64) error { return nil }); err != nil {
			t.Fatal(err)
		}
	}
	if seq.LSN() != 5 {
		t.Fatalf("sequencer at %d, want 5", seq.LSN())
	}
	st.Close()

	// Restart: the order resumes at 6, not at a fresh base.
	st2, err := OpenStore(dir, LogOptions{Fsync: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	seq2 := NewDurableSequencer(st2)
	if seq2.LSN() != 5 {
		t.Fatalf("restarted sequencer at %d, want 5", seq2.LSN())
	}
	var got uint64
	if _, err := seq2.Submit([]fragment.Op{{Kind: fragment.OpInsertEdge, U: 1, V: 2}}, func(lsn uint64) error {
		got = lsn
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if got != 6 {
		t.Fatalf("restarted sequencer assigned %d, want 6", got)
	}
	st2.Close()

	// Snapshot-truncated store: every record gone, the LSN survives in the
	// segment header (and the snapshot name).
	g := gen.Uniform(gen.Config{Nodes: 8, Edges: 16, Labels: []string{"A"}, Seed: 4})
	fr, err := fragment.Random(g, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	st3, err := OpenStore(dir, LogOptions{Fsync: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	snap, err := TakeSnapshot(fragment.NewReplicaAt(fr, 0, 6))
	if err != nil {
		t.Fatal(err)
	}
	if err := st3.SaveSnapshot(snap); err != nil {
		t.Fatal(err)
	}
	st3.Close()
	st4, err := OpenStore(dir, LogOptions{Fsync: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	defer st4.Close()
	if seq4 := NewDurableSequencer(st4); seq4.LSN() != 6 {
		t.Fatalf("sequencer after snapshot truncation at %d, want 6", seq4.LSN())
	}
}

// TestSequencerReclaimsUndeliveredLSN: an in-memory sequencer rolls back
// an LSN whose batch reached no replica (nothing holds it, so keeping the
// number would wedge every later update behind an unfillable hole); a
// durable sequencer keeps it, because the write-ahead log re-delivers.
func TestSequencerReclaimsUndeliveredLSN(t *testing.T) {
	ops := []fragment.Op{{Kind: fragment.OpInsertEdge, U: 0, V: 1}}
	undelivered := func(uint64) error {
		return fmt.Errorf("%w: all sites down", ErrNotDelivered)
	}
	mem := NewSequencer(0)
	if _, err := mem.Submit(ops, undelivered); err == nil {
		t.Fatal("undelivered submit must surface its error")
	}
	if mem.LSN() != 0 {
		t.Fatalf("in-memory sequencer kept undelivered LSN: at %d, want 0", mem.LSN())
	}
	var got uint64
	if _, err := mem.Submit(ops, func(lsn uint64) error { got = lsn; return nil }); err != nil {
		t.Fatal(err)
	}
	if got != 1 {
		t.Fatalf("after reclaim the next batch got LSN %d, want 1", got)
	}
	// A delivered-but-failed round (some replica applied) keeps the LSN.
	if _, err := mem.Submit(ops, func(uint64) error { return fmt.Errorf("epoch split") }); err == nil {
		t.Fatal("failed submit must surface its error")
	}
	if mem.LSN() != 2 {
		t.Fatalf("partially delivered LSN was reclaimed: at %d, want 2", mem.LSN())
	}

	st, err := OpenStore(t.TempDir(), LogOptions{Fsync: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	dur := NewDurableSequencer(st)
	if _, err := dur.Submit(ops, undelivered); err == nil {
		t.Fatal("undelivered submit must surface its error")
	}
	if dur.LSN() != 1 {
		t.Fatalf("durable sequencer rolled back a logged LSN: at %d, want 1", dur.LSN())
	}
	if recs, ok, err := st.Log().ReadFrom(1); err != nil || !ok || len(recs) != 1 {
		t.Fatalf("the logged record must survive for re-delivery: ok=%v err=%v len=%d", ok, err, len(recs))
	}
}

// TestSnapshotRoundTrip: a snapshot of a churned deployment — including
// node deletions, whose tombstones the graph text codec cannot carry —
// decodes to an identical fingerprint, and mutilated bytes are rejected.
func TestSnapshotRoundTrip(t *testing.T) {
	g := gen.Uniform(gen.Config{Nodes: 30, Edges: 120, Labels: []string{"A", "B"}, Seed: 5})
	fr, err := fragment.Partition(g, fragment.EdgeCutPartitioner{Seed: 5}, 3)
	if err != nil {
		t.Fatal(err)
	}
	rep := fragment.NewReplica(fr)
	ops := []fragment.Op{
		{Kind: fragment.OpDeleteNode, U: 3},
		{Kind: fragment.OpDeleteNode, U: 17},
		{Kind: fragment.OpInsertNode, Label: "C", Frag: -1},
		{Kind: fragment.OpInsertEdge, U: 0, V: 29},
	}
	if _, _, err := rep.ApplyLSN(1, 9, ops); err != nil {
		t.Fatal(err)
	}
	snap, err := TakeSnapshot(rep)
	if err != nil {
		t.Fatal(err)
	}
	if snap.LSN != 1 {
		t.Fatalf("snapshot LSN %d, want 1", snap.LSN)
	}
	b, err := EncodeSnapshot(snap)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeSnapshot(b)
	if err != nil {
		t.Fatal(err)
	}
	if got.Fingerprint != snap.Fr.Fingerprint() || got.Fr.Fingerprint() != got.Fingerprint {
		t.Fatal("snapshot fingerprint drifted through the round trip")
	}
	if name, seed := fragment.Describe(got.Fr.Partitioner()); name != "edgecut" || seed != 5 {
		t.Fatalf("partitioner did not survive: %q/%d", name, seed)
	}
	// Tombstone determinism: the same insert on both sides reuses the same
	// freed ID.
	origID, _, err := snap.Fr.InsertNode("X", -1)
	if err != nil {
		t.Fatal(err)
	}
	gotID, _, err := got.Fr.InsertNode("X", -1)
	if err != nil {
		t.Fatal(err)
	}
	if origID != gotID {
		t.Fatalf("post-snapshot insert diverged: %d vs %d", origID, gotID)
	}
	// A flipped byte in the graph section must fail the fingerprint check.
	bad := append([]byte(nil), b...)
	bad[len(bad)/2] ^= 1
	if _, err := DecodeSnapshot(bad); err == nil {
		t.Fatal("mutilated snapshot decoded cleanly")
	}
}

// TestStoreRecover: snapshot + log suffix reconstructs the replica state;
// a fresh store recovers the base state unchanged.
func TestStoreRecover(t *testing.T) {
	g := gen.Uniform(gen.Config{Nodes: 20, Edges: 60, Labels: []string{"A"}, Seed: 6})
	fr, err := fragment.Random(g, 2, 6)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	st, err := OpenStore(dir, LogOptions{Fsync: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	// Mirror what a durable site does: apply + append, checkpoint midway.
	live := fragment.NewReplica(fr)
	for i := uint64(1); i <= 10; i++ {
		ops := []fragment.Op{{Kind: fragment.OpInsertEdge, U: graph.NodeID(i), V: graph.NodeID(19 - i)}}
		if _, _, err := live.ApplyLSN(i, 1, ops); err != nil {
			t.Fatal(err)
		}
		if err := st.Log().Append(Record{LSN: i, Ops: ops}); err != nil {
			t.Fatal(err)
		}
		if i == 6 {
			snap, err := TakeSnapshot(live)
			if err != nil {
				t.Fatal(err)
			}
			if err := st.SaveSnapshot(snap); err != nil {
				t.Fatal(err)
			}
		}
	}
	st.Close()

	st2, err := OpenStore(dir, LogOptions{Fsync: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	// The base files are stale (pre-churn); recovery must not need them
	// beyond the snapshot.
	gBase := gen.Uniform(gen.Config{Nodes: 20, Edges: 60, Labels: []string{"A"}, Seed: 6})
	frBase, err := fragment.Random(gBase, 2, 6)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Recover(st2, frBase)
	if err != nil {
		t.Fatal(err)
	}
	cur, _, lsn := rep.State()
	if lsn != 10 {
		t.Fatalf("recovered LSN %d, want 10", lsn)
	}
	liveFr, _, _ := live.State()
	if cur.Fingerprint() != liveFr.Fingerprint() {
		t.Fatal("recovered state fingerprint differs from the live replica")
	}
}
