// Package oplog is the durability layer of the serving runtime: a
// totally-ordered, durable log of every mutation applied to a deployment,
// plus the snapshots that bound how much of it must be replayed.
//
// Three pieces compose:
//
//   - Sequencer assigns one monotonic log sequence number (LSN) to every
//     transactional update batch. All writers of a deployment submit
//     through one sequencer, which gives the batches a single total order
//     — the property the paper's correctness argument assumes when it
//     requires every site to evaluate the same fragmentation. The replicas
//     enforce the order (a batch applies only at lastLSN+1), so two
//     gateways interleaving ops can no longer leave sites in different
//     states.
//   - Log is an append-only segmented file log: CRC-framed records, a
//     configurable fsync policy, segment rotation, and truncation once a
//     snapshot covers a prefix. Each segment header carries the LSN the
//     segment starts after, so a restarted process resumes the order
//     instead of forking it even when the log holds no records.
//   - Snapshot is a checkpoint of the whole fragmentation state at an LSN,
//     integrity-checked with fragment.Fingerprint. Snapshot plus log
//     suffix reconstructs the deployment state at any point; the wire
//     layer ships both to replicas that fell behind (catch-up
//     replication).
//
// The record payload codec (ops of a batch) is shared with the wire
// protocol's update and sync frames, so a log record replays byte-exactly
// as it was broadcast.
package oplog

import (
	"encoding/binary"
	"fmt"

	"distreach/internal/fragment"
	"distreach/internal/graph"
)

// Record is one sequenced update batch: the unit of the log and of
// catch-up replay.
type Record struct {
	LSN uint64
	Ops []fragment.Op
}

// maxOps bounds the declared op count of one record against hostile
// length prefixes; it comfortably exceeds any real transactional batch.
const maxOps = 1 << 16

// maxLabel bounds one inserted node's label on the wire and on disk.
const maxLabel = 0xFFFF

// AppendOps appends the shared ops codec to b: count u32, then per op the
// kind byte and its operands (little-endian). It is the payload format of
// log records, update frames and sync replay frames.
func AppendOps(b []byte, ops []fragment.Op) ([]byte, error) {
	b = binary.LittleEndian.AppendUint32(b, uint32(len(ops)))
	for i, op := range ops {
		b = append(b, byte(op.Kind))
		switch op.Kind {
		case fragment.OpInsertEdge, fragment.OpDeleteEdge:
			b = binary.LittleEndian.AppendUint32(b, uint32(op.U))
			b = binary.LittleEndian.AppendUint32(b, uint32(op.V))
		case fragment.OpInsertNode:
			if len(op.Label) > maxLabel {
				return nil, fmt.Errorf("oplog: op %d: label of %d bytes exceeds the limit", i, len(op.Label))
			}
			b = binary.LittleEndian.AppendUint32(b, uint32(int32(op.Frag)))
			b = binary.LittleEndian.AppendUint16(b, uint16(len(op.Label)))
			b = append(b, op.Label...)
		case fragment.OpDeleteNode:
			b = binary.LittleEndian.AppendUint32(b, uint32(op.U))
		default:
			return nil, fmt.Errorf("oplog: op %d: unknown kind %q", i, byte(op.Kind))
		}
	}
	return b, nil
}

// ReadOps is the inverse of AppendOps, consuming from the cursor. Every
// count and length is bounds-checked so hostile input is rejected with an
// error, never a panic or an implausible allocation.
func ReadOps(r *Cursor) ([]fragment.Op, error) {
	n, err := r.U32()
	if err != nil {
		return nil, err
	}
	if n > maxOps || uint64(n) > uint64(r.Remaining()) { // each op is >= 1 byte
		return nil, fmt.Errorf("oplog: implausible op count %d", n)
	}
	ops := make([]fragment.Op, 0, n)
	for i := 0; i < int(n); i++ {
		kind, err := r.U8()
		if err != nil {
			return nil, err
		}
		op := fragment.Op{Kind: fragment.OpKind(kind)}
		switch op.Kind {
		case fragment.OpInsertEdge, fragment.OpDeleteEdge:
			u, err := r.U32()
			if err != nil {
				return nil, err
			}
			v, err := r.U32()
			if err != nil {
				return nil, err
			}
			op.U, op.V = graph.NodeID(u), graph.NodeID(v)
		case fragment.OpInsertNode:
			f, err := r.U32()
			if err != nil {
				return nil, err
			}
			llen, err := r.U16()
			if err != nil {
				return nil, err
			}
			lb, err := r.Bytes(uint32(llen))
			if err != nil {
				return nil, err
			}
			op.Frag = int(int32(f))
			op.Label = string(lb)
		case fragment.OpDeleteNode:
			u, err := r.U32()
			if err != nil {
				return nil, err
			}
			op.U = graph.NodeID(u)
		default:
			return nil, fmt.Errorf("oplog: op %d: unknown kind %q", i, kind)
		}
		ops = append(ops, op)
	}
	return ops, nil
}

// Cursor is a bounds-checked reader over a codec payload.
type Cursor struct {
	b   []byte
	off int
}

// NewCursor wraps b.
func NewCursor(b []byte) *Cursor { return &Cursor{b: b} }

// Remaining reports the unread byte count.
func (r *Cursor) Remaining() int { return len(r.b) - r.off }

// U8 reads one byte.
func (r *Cursor) U8() (byte, error) {
	if r.off+1 > len(r.b) {
		return 0, fmt.Errorf("oplog: truncated payload at offset %d", r.off)
	}
	v := r.b[r.off]
	r.off++
	return v, nil
}

// U16 reads one little-endian uint16.
func (r *Cursor) U16() (uint16, error) {
	if r.off+2 > len(r.b) {
		return 0, fmt.Errorf("oplog: truncated payload at offset %d", r.off)
	}
	v := binary.LittleEndian.Uint16(r.b[r.off:])
	r.off += 2
	return v, nil
}

// U32 reads one little-endian uint32.
func (r *Cursor) U32() (uint32, error) {
	if r.off+4 > len(r.b) {
		return 0, fmt.Errorf("oplog: truncated payload at offset %d", r.off)
	}
	v := binary.LittleEndian.Uint32(r.b[r.off:])
	r.off += 4
	return v, nil
}

// U64 reads one little-endian uint64.
func (r *Cursor) U64() (uint64, error) {
	if r.off+8 > len(r.b) {
		return 0, fmt.Errorf("oplog: truncated payload at offset %d", r.off)
	}
	v := binary.LittleEndian.Uint64(r.b[r.off:])
	r.off += 8
	return v, nil
}

// Bytes reads n raw bytes (a view into the payload, not a copy).
func (r *Cursor) Bytes(n uint32) ([]byte, error) {
	if uint64(n) > uint64(len(r.b)-r.off) {
		return nil, fmt.Errorf("oplog: payload claims %d bytes, %d remain", n, len(r.b)-r.off)
	}
	v := r.b[r.off : r.off+int(n)]
	r.off += int(n)
	return v, nil
}

// Done rejects trailing bytes, so decode∘encode is the identity.
func (r *Cursor) Done() error {
	if r.off != len(r.b) {
		return fmt.Errorf("oplog: %d trailing bytes after payload", len(r.b)-r.off)
	}
	return nil
}
