package oplog

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
)

// SyncPolicy selects when the log flushes appends to stable storage.
type SyncPolicy int

const (
	// SyncAlways fsyncs after every append: a record acknowledged is a
	// record that survives power loss. The durable default.
	SyncAlways SyncPolicy = iota
	// SyncNever leaves flushing to the OS: fast, survives process crashes
	// but not machine crashes. For benchmarks and tests.
	SyncNever
)

// ParseSyncPolicy resolves the -fsync flag values.
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch s {
	case "", "always":
		return SyncAlways, nil
	case "never", "none":
		return SyncNever, nil
	}
	return 0, fmt.Errorf("oplog: unknown fsync policy %q (want always or never)", s)
}

// Segment file layout. Every segment starts with a fixed header whose
// base field is the LSN the segment starts after (its first record, if
// any, carries base+1). The header is what lets a restarted sequencer
// resume the total order even when every record has been truncated away:
// the active segment always survives truncation, and its base (plus any
// records after it) pins the last assigned LSN.
//
//	header := magic "DRWAL" u8*5 | version u8 | reserved u16 | base u64
//	record := size u32 | crc32c u32 | body          (size = len(body))
//	body   := lsn u64 | ops (AppendOps codec)
const (
	segMagic      = "DRWAL"
	segVersion    = 1
	segHeaderSize = 5 + 1 + 2 + 8
	recHeaderSize = 8
)

// maxRecordBody bounds one record against corrupt size prefixes.
const maxRecordBody = 1 << 26

// defaultSegmentBytes rotates segments at 4 MiB.
const defaultSegmentBytes = 4 << 20

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// LogOptions tunes a Log at open time. The zero value is a durable
// default: fsync on every append, 4 MiB segments.
type LogOptions struct {
	Fsync        SyncPolicy
	SegmentBytes int64 // rotate the active segment past this size; 0 = 4 MiB
}

// segment is one on-disk log file.
type segment struct {
	path string
	base uint64 // LSN the segment starts after
	last uint64 // LSN of its last record (== base when empty)
	size int64
}

// Log is the durable segmented record log. Safe for concurrent use;
// appends are strictly ordered (each record's LSN must be last+1).
//
// Group commit: AppendNoSync writes a record's frame without flushing and
// returns its write sequence number; SyncCommit(seq) makes everything up
// to seq durable with at most one fsync — concurrent committers
// piggyback on whichever flush covers them instead of queueing one fsync
// each. Append remains the single-writer path (frame + immediate flush).
type Log struct {
	dir  string
	opts LogOptions

	mu     sync.Mutex
	segs   []segment // sorted by base; the last one is active
	active *os.File
	last   uint64 // last appended (or recovered) LSN

	// Group-commit bookkeeping: writeSeq numbers written frames (under
	// mu); durableSeq is the highest writeSeq known flushed (advanced
	// monotonically); syncMu serializes the actual fsyncs so committers
	// coalesce behind one in-flight flush; syncs counts fsyncs issued
	// (observability and the coalescing tests). syncHook, when set (tests
	// only), runs before each SyncCommit flush while syncMu is held —
	// widening the window concurrent committers pile up in.
	writeSeq   uint64
	durableSeq atomic.Uint64
	syncMu     sync.Mutex
	syncs      atomic.Int64
	syncHook   func()
}

// OpenLog opens (or creates) the log in dir, scanning existing segments
// and recovering the last LSN. A torn or corrupt record at the tail of
// the newest segment is truncated away (the usual crash outcome: the
// record was never acknowledged); corruption anywhere else is an error.
func OpenLog(dir string, opts LogOptions) (*Log, error) {
	if opts.SegmentBytes <= 0 {
		opts.SegmentBytes = defaultSegmentBytes
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("oplog: %w", err)
	}
	names, err := filepath.Glob(filepath.Join(dir, "seg-*.wal"))
	if err != nil {
		return nil, fmt.Errorf("oplog: %w", err)
	}
	sort.Strings(names)
	l := &Log{dir: dir, opts: opts}
	for i, name := range names {
		seg, err := scanSegment(name, i == len(names)-1)
		if err != nil {
			return nil, err
		}
		if len(l.segs) > 0 && seg.base != l.segs[len(l.segs)-1].last {
			return nil, fmt.Errorf("oplog: segment %s starts after LSN %d but the previous one ends at %d",
				filepath.Base(name), seg.base, l.segs[len(l.segs)-1].last)
		}
		l.segs = append(l.segs, seg)
		l.last = seg.last
	}
	if len(l.segs) == 0 {
		if err := l.rotateLocked(0); err != nil {
			return nil, err
		}
	} else {
		f, err := os.OpenFile(l.segs[len(l.segs)-1].path, os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return nil, fmt.Errorf("oplog: %w", err)
		}
		// The tail may have been truncated past a torn record; O_APPEND
		// writes after the surviving prefix.
		if err := f.Truncate(l.segs[len(l.segs)-1].size); err != nil {
			f.Close()
			return nil, fmt.Errorf("oplog: %w", err)
		}
		l.active = f
	}
	return l, nil
}

// scanSegment reads one segment's header and walks its records. When tail
// is true, a torn or corrupt suffix is dropped (size records the surviving
// prefix); otherwise it is an error.
func scanSegment(path string, tail bool) (segment, error) {
	f, err := os.Open(path)
	if err != nil {
		return segment{}, fmt.Errorf("oplog: %w", err)
	}
	defer f.Close()
	hdr := make([]byte, segHeaderSize)
	if _, err := io.ReadFull(f, hdr); err != nil {
		return segment{}, fmt.Errorf("oplog: %s: short header: %w", filepath.Base(path), err)
	}
	if string(hdr[:5]) != segMagic || hdr[5] != segVersion {
		return segment{}, fmt.Errorf("oplog: %s: bad segment header", filepath.Base(path))
	}
	seg := segment{path: path, base: binary.LittleEndian.Uint64(hdr[8:]), size: segHeaderSize}
	seg.last = seg.base
	rh := make([]byte, recHeaderSize)
	for {
		if _, err := io.ReadFull(f, rh); err != nil {
			if err == io.EOF {
				return seg, nil
			}
			if tail {
				return seg, nil // torn record header: drop it
			}
			return segment{}, fmt.Errorf("oplog: %s: torn record header mid-log", filepath.Base(path))
		}
		size := binary.LittleEndian.Uint32(rh)
		crc := binary.LittleEndian.Uint32(rh[4:])
		if size < 8 || size > maxRecordBody {
			if tail {
				return seg, nil
			}
			return segment{}, fmt.Errorf("oplog: %s: implausible record size %d", filepath.Base(path), size)
		}
		body := make([]byte, size)
		if _, err := io.ReadFull(f, body); err != nil {
			if tail {
				return seg, nil
			}
			return segment{}, fmt.Errorf("oplog: %s: torn record body mid-log", filepath.Base(path))
		}
		if crc32.Checksum(body, crcTable) != crc {
			if tail {
				return seg, nil
			}
			return segment{}, fmt.Errorf("oplog: %s: record CRC mismatch mid-log", filepath.Base(path))
		}
		lsn := binary.LittleEndian.Uint64(body)
		if lsn != seg.last+1 {
			return segment{}, fmt.Errorf("oplog: %s: record LSN %d after %d", filepath.Base(path), lsn, seg.last)
		}
		seg.last = lsn
		seg.size += int64(recHeaderSize) + int64(size)
	}
}

func segName(base uint64) string { return fmt.Sprintf("seg-%016x.wal", base) }

// rotateLocked opens a fresh active segment starting after base.
func (l *Log) rotateLocked(base uint64) error {
	path := filepath.Join(l.dir, segName(base))
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return fmt.Errorf("oplog: %w", err)
	}
	hdr := make([]byte, segHeaderSize)
	copy(hdr, segMagic)
	hdr[5] = segVersion
	binary.LittleEndian.PutUint64(hdr[8:], base)
	if _, err := f.Write(hdr); err != nil {
		f.Close()
		return fmt.Errorf("oplog: %w", err)
	}
	if l.opts.Fsync == SyncAlways {
		if err := f.Sync(); err != nil {
			f.Close()
			return fmt.Errorf("oplog: %w", err)
		}
	}
	if l.active != nil {
		// Unsynced group-commit frames may still sit in the outgoing
		// segment; flush before closing so SyncCommit's contract (one
		// flush covers every earlier frame) survives rotation. Everything
		// written so far lives in closed-and-synced segments after this,
		// so the whole write sequence is durable.
		if l.opts.Fsync == SyncAlways {
			if err := l.active.Sync(); err != nil {
				f.Close()
				return fmt.Errorf("oplog: %w", err)
			}
			advanceMax(&l.durableSeq, l.writeSeq)
		}
		l.active.Close()
	}
	l.active = f
	l.segs = append(l.segs, segment{path: path, base: base, last: base, size: segHeaderSize})
	return nil
}

// Append durably appends one record. The record's LSN must be exactly
// LastLSN+1 — the log stores the total order, it does not invent one.
func (l *Log) Append(rec Record) error {
	l.mu.Lock()
	seq, err := l.appendFrameLocked(rec)
	l.mu.Unlock()
	if err != nil {
		return err
	}
	return l.SyncCommit(seq)
}

// AppendNoSync writes one record's frame without flushing and returns the
// write sequence number a later SyncCommit must cover for the record to
// be durable. The group-commit half of Append: several writers append
// their frames back to back, then share one flush.
func (l *Log) AppendNoSync(rec Record) (seq uint64, err error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.appendFrameLocked(rec)
}

// appendFrameLocked writes one record frame (rotating first when the
// active segment is full) and advances the write sequence. Caller holds
// l.mu; the frame is not flushed.
func (l *Log) appendFrameLocked(rec Record) (seq uint64, err error) {
	body := binary.LittleEndian.AppendUint64(make([]byte, 0, 16), rec.LSN)
	body, err = AppendOps(body, rec.Ops)
	if err != nil {
		return 0, err
	}
	if l.active == nil {
		return 0, fmt.Errorf("oplog: log closed")
	}
	if rec.LSN != l.last+1 {
		return 0, fmt.Errorf("oplog: append LSN %d, log is at %d", rec.LSN, l.last)
	}
	cur := &l.segs[len(l.segs)-1]
	if cur.size >= l.opts.SegmentBytes {
		if err := l.rotateLocked(l.last); err != nil {
			return 0, err
		}
		cur = &l.segs[len(l.segs)-1]
	}
	frame := make([]byte, recHeaderSize+len(body))
	binary.LittleEndian.PutUint32(frame, uint32(len(body)))
	binary.LittleEndian.PutUint32(frame[4:], crc32.Checksum(body, crcTable))
	copy(frame[recHeaderSize:], body)
	if _, err := l.active.Write(frame); err != nil {
		return 0, fmt.Errorf("oplog: %w", err)
	}
	cur.size += int64(len(frame))
	cur.last = rec.LSN
	l.last = rec.LSN
	l.writeSeq++
	return l.writeSeq, nil
}

// SyncCommit makes every frame up to write sequence seq durable. Under
// SyncAlways, committers whose seq is already covered return without
// touching the disk; the rest serialize on syncMu, re-check, and the
// first one through flushes for everybody queued behind it — N
// concurrent commits cost far fewer than N fsyncs. Under SyncNever it is
// a no-op (the OS flushes eventually, same as Append always behaved).
func (l *Log) SyncCommit(seq uint64) error {
	if l.opts.Fsync != SyncAlways {
		return nil
	}
	if l.durableSeq.Load() >= seq {
		return nil
	}
	l.syncMu.Lock()
	defer l.syncMu.Unlock()
	if l.durableSeq.Load() >= seq {
		return nil // a peer's flush covered us while we queued
	}
	l.mu.Lock()
	f := l.active
	cover := l.writeSeq
	l.mu.Unlock()
	if f == nil {
		return fmt.Errorf("oplog: log closed")
	}
	if l.syncHook != nil {
		l.syncHook()
	}
	if err := f.Sync(); err != nil {
		// A rotation can close f between the capture above and the Sync —
		// but rotation flushes the outgoing segment first, so if durableSeq
		// now covers seq the commit actually succeeded.
		if l.durableSeq.Load() >= seq {
			return nil
		}
		return fmt.Errorf("oplog: %w", err)
	}
	l.syncs.Add(1)
	advanceMax(&l.durableSeq, cover)
	return nil
}

// SyncCount reports how many fsyncs the log has issued via SyncCommit —
// the group-commit tests assert it stays well under one per append.
func (l *Log) SyncCount() int64 { return l.syncs.Load() }

// advanceMax raises a monotonically, never lowering it.
func advanceMax(a *atomic.Uint64, v uint64) {
	for {
		cur := a.Load()
		if cur >= v || a.CompareAndSwap(cur, v) {
			return
		}
	}
}

// LastLSN reports the LSN of the newest record (or the recovered base when
// the log is empty): the point the total order resumes from.
func (l *Log) LastLSN() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.last
}

// ReadFrom returns every record with LSN >= from, in order. ok is false
// when the log no longer holds that prefix (truncated after a snapshot):
// the caller must fall back to snapshot transfer.
func (l *Log) ReadFrom(from uint64) (recs []Record, ok bool, err error) {
	if from == 0 {
		from = 1
	}
	l.mu.Lock()
	segs := append([]segment(nil), l.segs...)
	l.mu.Unlock()
	if len(segs) == 0 || from <= segs[0].base {
		return nil, false, nil
	}
	for _, seg := range segs {
		if seg.last < from {
			continue
		}
		srecs, err := readSegmentRecords(seg)
		if err != nil {
			return nil, false, err
		}
		for _, r := range srecs {
			if r.LSN >= from {
				recs = append(recs, r)
			}
		}
	}
	return recs, true, nil
}

// readSegmentRecords decodes every record of one scanned segment (only the
// prefix recorded in seg.size, so a torn tail is never replayed).
func readSegmentRecords(seg segment) ([]Record, error) {
	data, err := os.ReadFile(seg.path)
	if err != nil {
		return nil, fmt.Errorf("oplog: %w", err)
	}
	if int64(len(data)) > seg.size {
		data = data[:seg.size]
	}
	if len(data) < segHeaderSize {
		return nil, fmt.Errorf("oplog: %s: short segment", filepath.Base(seg.path))
	}
	var recs []Record
	off := segHeaderSize
	for off+recHeaderSize <= len(data) {
		size := binary.LittleEndian.Uint32(data[off:])
		crc := binary.LittleEndian.Uint32(data[off+4:])
		if size < 8 || size > maxRecordBody || off+recHeaderSize+int(size) > len(data) {
			return nil, fmt.Errorf("oplog: %s: corrupt record at offset %d", filepath.Base(seg.path), off)
		}
		body := data[off+recHeaderSize : off+recHeaderSize+int(size)]
		if crc32.Checksum(body, crcTable) != crc {
			return nil, fmt.Errorf("oplog: %s: record CRC mismatch at offset %d", filepath.Base(seg.path), off)
		}
		cur := NewCursor(body)
		lsn, err := cur.U64()
		if err != nil {
			return nil, err
		}
		ops, err := ReadOps(cur)
		if err != nil {
			return nil, fmt.Errorf("oplog: %s: record %d: %w", filepath.Base(seg.path), lsn, err)
		}
		if err := cur.Done(); err != nil {
			return nil, err
		}
		recs = append(recs, Record{LSN: lsn, Ops: ops})
		off += recHeaderSize + int(size)
	}
	return recs, nil
}

// TruncateThrough drops whole segments whose records are all <= lsn —
// called after a snapshot at lsn makes that prefix redundant. The active
// segment always survives, so the last LSN stays pinned on disk.
func (l *Log) TruncateThrough(lsn uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	kept := l.segs[:0]
	for i, seg := range l.segs {
		if i < len(l.segs)-1 && seg.last <= lsn {
			if err := os.Remove(seg.path); err != nil {
				return fmt.Errorf("oplog: %w", err)
			}
			continue
		}
		kept = append(kept, seg)
	}
	l.segs = kept
	return nil
}

// AdvanceTo jumps the log forward to lsn without records: every existing
// segment is dropped (their records precede the gap, so no contiguous
// replay through them is possible anyway) and a fresh segment starting
// after lsn becomes active. Used when the deployment turns out to be ahead
// of the write-ahead log — the order is preserved, and replicas older than
// lsn are caught up by snapshot transfer instead of replay.
func (l *Log) AdvanceTo(lsn uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if lsn <= l.last {
		return nil
	}
	for _, seg := range l.segs {
		if seg.path != "" {
			os.Remove(seg.path)
		}
	}
	if l.active != nil {
		l.active.Close()
		l.active = nil
	}
	l.segs = nil
	if err := l.rotateLocked(lsn); err != nil {
		return err
	}
	l.last = lsn
	return nil
}

// Stats reports the segment count and total bytes on disk.
func (l *Log) Stats() (segments int, bytes int64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	for _, seg := range l.segs {
		bytes += seg.size
	}
	return len(l.segs), bytes
}

// Close flushes and closes the active segment.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.active == nil {
		return nil
	}
	err := l.active.Sync()
	if cerr := l.active.Close(); err == nil {
		err = cerr
	}
	l.active = nil
	return err
}
