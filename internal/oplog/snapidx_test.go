package oplog

import (
	"sync"
	"testing"
	"time"

	"distreach/internal/fragment"
	"distreach/internal/gen"
	"distreach/internal/reachindex"
)

// indexedDeployment builds a partitioned, indexed, LSN-advanced replica
// whose snapshot qualifies for the v2 index section on every fragment.
func indexedDeployment(t *testing.T) (*fragment.Replica, *fragment.Fragmentation) {
	t.Helper()
	g := gen.Uniform(gen.Config{Nodes: 120, Edges: 420, Labels: []string{"A"}, Seed: 71})
	fr, err := fragment.Partition(g, fragment.EdgeCutPartitioner{Seed: 71}, 3)
	if err != nil {
		t.Fatal(err)
	}
	rep := fragment.NewReplica(fr)
	if _, _, err := rep.ApplyLSN(1, 0, []fragment.Op{{Kind: fragment.OpInsertEdge, U: 0, V: 1}}); err != nil {
		t.Fatal(err)
	}
	fr.Compact()
	fr.SetReachIndexPolicy(reachindex.PolicyHits)
	fr.EnableReachIndex(1 << 20)
	fr.WaitReachIndexes()
	return rep, fr
}

// TestSnapshotIndexRoundTrip: a v2 snapshot carries one index blob per
// clean fragment, and the decoded replica serves them — same budget, same
// policy, nothing stale, zero rebuilds needed.
func TestSnapshotIndexRoundTrip(t *testing.T) {
	rep, fr := indexedDeployment(t)
	snap, err := TakeSnapshot(rep)
	if err != nil {
		t.Fatal(err)
	}
	if snap.IndexFrags != fr.Card() {
		t.Fatalf("snapshot captured %d indexes, want %d", snap.IndexFrags, fr.Card())
	}
	b, err := EncodeSnapshot(snap)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeSnapshot(b)
	if err != nil {
		t.Fatal(err)
	}
	if got.IndexFrags != fr.Card() {
		t.Fatalf("decode adopted %d indexes, want %d", got.IndexFrags, fr.Card())
	}
	if got.Fr.ReachIndexBudget() != 1<<20 {
		t.Fatalf("adopted budget %d, want %d", got.Fr.ReachIndexBudget(), 1<<20)
	}
	if got.Fr.ReachIndexPolicy() != reachindex.PolicyHits {
		t.Fatalf("adopted policy %s, want hits", got.Fr.ReachIndexPolicy())
	}
	got.Fr.RLock()
	for _, f := range got.Fr.Fragments() {
		idx := f.ReachIndex()
		if idx == nil || idx.AnyStale() {
			t.Fatalf("fragment %d: adopted index nil or stale", f.ID)
		}
	}
	got.Fr.RUnlock()
	if st := got.Fr.ReachIndexStats(); st.Rebuilds != 0 {
		t.Fatalf("adoption triggered %d rebuilds, want 0", st.Rebuilds)
	}
	// Dirty fragments are omitted, not snapshotted stale: after an
	// uncompacted mutation only clean fragments make it into the section.
	if _, _, err := rep.ApplyLSN(2, 0, []fragment.Op{{Kind: fragment.OpInsertEdge, U: 2, V: 3}}); err != nil {
		t.Fatal(err)
	}
	snap2, err := TakeSnapshot(rep)
	if err != nil {
		t.Fatal(err)
	}
	if snap2.IndexFrags >= fr.Card() {
		t.Fatalf("dirty deployment still captured %d of %d indexes", snap2.IndexFrags, fr.Card())
	}
}

// sectionOffset walks the envelope prefix exactly as the decoder does and
// returns the byte offset of the index section payload.
func sectionOffset(t *testing.T, b []byte) (start, ilen int) {
	t.Helper()
	r := NewCursor(b)
	r.Bytes(uint32(len(snapMagic)))
	r.U8()
	nlen, _ := r.U8()
	r.Bytes(uint32(nlen))
	r.U64()
	r.U64()
	r.U64()
	r.U64()
	glen, _ := r.U32()
	r.Bytes(glen)
	alen, _ := r.U32()
	r.Bytes(alen)
	dlen, _ := r.U32()
	for i := 0; i < int(dlen); i++ {
		r.U32()
	}
	il, err := r.U32()
	if err != nil {
		t.Fatalf("envelope walk: %v", err)
	}
	return len(b) - r.Remaining(), int(il)
}

// TestSnapshotIndexSectionRejected: every way an index section can be
// wrong — stale LSN, foreign fingerprint, junk policy, zero or absurd
// budget, corrupted blob — must drop the section, keep the snapshot, and
// leave the replica on the ordinary rebuild path with correct answers.
func TestSnapshotIndexSectionRejected(t *testing.T) {
	rep, fr := indexedDeployment(t)
	snap, err := TakeSnapshot(rep)
	if err != nil {
		t.Fatal(err)
	}
	b, err := EncodeSnapshot(snap)
	if err != nil {
		t.Fatal(err)
	}
	start, ilen := sectionOffset(t, b)
	if ilen == 0 {
		t.Fatal("no index section to corrupt")
	}
	cases := []struct {
		name   string
		offset int // relative to section start; -1 = last byte of envelope
		xor    byte
	}{
		{"stale LSN", 0, 0xFF},
		{"foreign fingerprint", 8, 0xFF},
		{"absurd budget", 16 + 7, 0x7F}, // top byte of the u64 budget
		{"junk policy", 24, 0x7F},
		{"corrupted blob", -1, 0xFF},
	}
	for _, tc := range cases {
		mut := append([]byte(nil), b...)
		if tc.offset < 0 {
			mut[len(mut)-1] ^= tc.xor
		} else {
			mut[start+tc.offset] ^= tc.xor
		}
		got, err := DecodeSnapshot(mut)
		if err != nil {
			t.Fatalf("%s: corruption sank the whole snapshot: %v", tc.name, err)
		}
		if got.IndexFrags != 0 {
			t.Fatalf("%s: adopted %d indexes from a bad section", tc.name, got.IndexFrags)
		}
		if got.Fr.Fingerprint() != fr.Fingerprint() {
			t.Fatalf("%s: fragmentation state damaged", tc.name)
		}
		if got.Fr.ReachIndexBudget() != 0 {
			t.Fatalf("%s: budget configured from a rejected section", tc.name)
		}
		got.Fr.RLock()
		for _, f := range got.Fr.Fragments() {
			if f.ReachIndex() != nil {
				t.Fatalf("%s: fragment %d kept an index from a rejected section", tc.name, f.ID)
			}
		}
		got.Fr.RUnlock()
		// Clean fallback: enabling indexes on the recovered state rebuilds
		// from scratch without complaint.
		got.Fr.EnableReachIndex(1 << 20)
		got.Fr.WaitReachIndexes()
		if st := got.Fr.ReachIndexStats(); st.Fragments != fr.Card() {
			t.Fatalf("%s: fallback rebuild indexed %d fragments, want %d", tc.name, st.Fragments, fr.Card())
		}
	}
	// A zeroed budget field (not a flipped bit) must also drop the section.
	mut := append([]byte(nil), b...)
	for i := 0; i < 8; i++ {
		mut[start+16+i] = 0
	}
	got, err := DecodeSnapshot(mut)
	if err != nil || got.IndexFrags != 0 {
		t.Fatalf("zero budget: err=%v adopted=%d", err, got.IndexFrags)
	}
}

// TestSnapshotRecoverWarm is the restart acceptance check: a site
// recovered from a store whose snapshot carries the index section serves
// indexed answers on its very first round — no rebuild has run, the hit
// counters move, and nothing disagrees with direct evaluation (the
// sibling exp N9 measures the same path end to end with queries).
func TestSnapshotRecoverWarm(t *testing.T) {
	rep, fr := indexedDeployment(t)
	snap, err := TakeSnapshot(rep)
	if err != nil {
		t.Fatal(err)
	}
	st, err := OpenStore(t.TempDir(), LogOptions{Fsync: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if err := st.SaveSnapshot(snap); err != nil {
		t.Fatal(err)
	}
	rep2, err := Recover(st, fr)
	if err != nil {
		t.Fatal(err)
	}
	fr2, _ := rep2.Current()
	if lsn := rep2.LSN(); lsn != snap.LSN {
		t.Fatalf("recovered at LSN %d, want %d", lsn, snap.LSN)
	}
	if fr2 == fr {
		t.Fatal("recovery returned the donor state, not the snapshot")
	}
	stx := fr2.ReachIndexStats()
	if !stx.Enabled || stx.Fragments != fr.Card() || stx.Rebuilds != 0 {
		t.Fatalf("recovered index state: %+v", stx)
	}
	// First round: exercise every fragment's source equations directly.
	fr2.RLock()
	for _, f := range fr2.Fragments() {
		idx := f.ReachIndex()
		for _, s := range f.InNodes() {
			if _, _, ok := idx.Equation(s, -1, false); ok {
				break
			}
		}
	}
	fr2.RUnlock()
	stx = fr2.ReachIndexStats()
	if stx.Hits == 0 {
		t.Fatalf("no index hits on the first post-recovery round: %+v", stx)
	}
	if stx.Rebuilds != 0 {
		t.Fatalf("a rebuild ran before the first round: %+v", stx)
	}
}

// TestGroupCommitCoalesces: concurrent durable submits under fsync=always
// must (a) all land, in dense LSN order, (b) each be durable before its
// Submit returns, and (c) share fsyncs — strictly fewer syncs than
// submits once writers pile up behind a slow flush.
func TestGroupCommitCoalesces(t *testing.T) {
	st, err := OpenStore(t.TempDir(), LogOptions{Fsync: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	// A slow flush guarantees pile-up: while one writer is inside fsync,
	// the rest append and must be covered by a later (shared) flush.
	st.Log().syncHook = func() { time.Sleep(500 * time.Microsecond) }
	seq := NewDurableSequencer(st)

	const writers, perWriter = 8, 25
	var mu sync.Mutex
	var delivered []uint64
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				_, err := seq.Submit(
					[]fragment.Op{{Kind: fragment.OpInsertEdge, U: 0, V: 1}},
					func(lsn uint64) error {
						mu.Lock()
						delivered = append(delivered, lsn)
						mu.Unlock()
						// The record must be durable before delivery.
						if d := st.Log().durableSeq.Load(); d < lsn {
							t.Errorf("LSN %d delivered with durableSeq %d", lsn, d)
						}
						return nil
					})
				if err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	const total = writers * perWriter
	if len(delivered) != total {
		t.Fatalf("delivered %d records, want %d", len(delivered), total)
	}
	// The turnstile delivers in LSN order: the recorded sequence must be
	// exactly 1..total as appended to the shared slice.
	for i, lsn := range delivered {
		if lsn != uint64(i+1) {
			t.Fatalf("delivery %d carried LSN %d — out of order", i, lsn)
		}
	}
	recs, ok, err := st.Log().ReadFrom(1)
	if err != nil || !ok || len(recs) != total {
		t.Fatalf("log readback: ok=%v err=%v len=%d want %d", ok, err, len(recs), total)
	}
	for i, rec := range recs {
		if rec.LSN != uint64(i+1) {
			t.Fatalf("log record %d has LSN %d", i, rec.LSN)
		}
	}
	syncs := st.Log().SyncCount()
	if syncs == 0 || syncs >= total {
		t.Fatalf("%d fsyncs for %d submits — no coalescing", syncs, total)
	}
	t.Logf("group commit: %d submits, %d fsyncs", total, syncs)
}
