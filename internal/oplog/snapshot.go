package oplog

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"

	"distreach/internal/fragment"
	"distreach/internal/graph"
	"distreach/internal/reachindex"
)

// Snapshot is a checkpoint of the whole fragmentation state at an LSN: the
// graph, the node-to-fragment assignment, the deployment epoch, and the
// partitioner that places live-inserted nodes. A snapshot plus the log
// records after its LSN reconstructs the deployment state exactly; the
// fingerprint (fragment.Fingerprint over graph + assignment) is verified
// on decode, so a truncated or bit-rotted snapshot fails loudly instead of
// seeding a silently diverged replica.
type Snapshot struct {
	LSN         uint64
	Epoch       uint64
	Fingerprint uint64
	Partitioner string // "" = none attached (least-loaded placement)
	Seed        uint64
	Fr          *fragment.Fragmentation

	// IndexFrags counts the per-fragment reachability indexes the
	// snapshot carries (encode: captured; decode: adopted into Fr). Zero
	// when indexing is off, every fragment was mid-rebuild or overlaid at
	// capture time, or the decoder rejected the section as stale/corrupt.
	IndexFrags int

	// enc caches the serialized form captured atomically with the identity
	// fields (TakeSnapshot); EncodeSnapshot returns it when present so a
	// snapshot of a live replica can never be re-serialized against a
	// graph that moved on since the LSN was recorded.
	enc []byte
}

// Snapshot envelope (little-endian):
//
//	magic "DRSNAP" | version u8 | nlen u8 | partitioner name |
//	seed u64 | lsn u64 | epoch u64 | fingerprint u64 |
//	glen u32 | graph text (graph.Write) |
//	alen u32 | assignment text (fragment.Write) |
//	dlen u32 | tombstoned node IDs u32 each (ascending) |
//	ilen u32 | index section (version >= 2; ilen 0 = none)
//
// The graph text codec does not record tombstones (slots freed by node
// deletion, whose IDs a later insert reuses), so the envelope carries them
// explicitly and the decoder re-deletes those slots before rebuilding the
// fragmentation — ID assignment stays deterministic across a snapshot
// round trip.
//
// The index section (new in version 2) persists the built per-fragment
// reachability indexes so a recovered replica serves indexed answers on
// its first query round instead of rebuilding from scratch:
//
//	lsn u64 | fingerprint u64 | budget u64 | policy u8 | count u32 |
//	count × (fragID u32 | bloblen u32 | crc32c u32 | reachindex blob)
//
// The section is best-effort in both directions. Encode captures only
// fragments whose live index is fresh (not stale, not mid-rebuild) and
// whose storage is overlay-free — an overlay-free fragment's slot
// numbering is the canonical Build order, which is exactly what
// fragment.Read reproduces, so the persisted slot-speaking index stays
// valid after the round trip. Decode treats the whole section as
// advisory: an LSN/fingerprint mismatch (a stale index smuggled into a
// newer snapshot), a CRC failure, a malformed blob, or a slot-count
// mismatch drops the section — never the snapshot — and the replica
// falls back to the ordinary async rebuild. Wrong answers are impossible
// either way; only the warm-start is lost.
const (
	snapMagic   = "DRSNAP"
	snapVersion = 2
)

// snapVersionNoIndex is the pre-index envelope (no ilen field at the
// tail); the decoder still accepts it.
const snapVersionNoIndex = 1

// TakeSnapshot captures the replica state behind rep as a Snapshot whose
// serialized form is frozen together with its identity: the state is
// encoded, then the replica is re-checked — if an update or rebalance
// landed meanwhile (new LSN, epoch, or a swapped fragmentation) the
// attempt is thrown away and retried, so the recorded LSN and fingerprint
// always describe exactly the encoded bytes.
func TakeSnapshot(rep *fragment.Replica) (*Snapshot, error) {
	for attempt := 0; attempt < 8; attempt++ {
		fr, epoch, lsn := rep.State()
		name, seed := fragment.Describe(fr.Partitioner())
		snap := &Snapshot{LSN: lsn, Epoch: epoch, Partitioner: name, Seed: seed, Fr: fr}
		enc, err := encodeSnapshotState(snap)
		if err != nil {
			return nil, err
		}
		snap.Fingerprint = fr.Fingerprint()
		if fr2, e2, l2 := rep.State(); l2 == lsn && e2 == epoch && fr2 == fr {
			snap.enc = finishSnapshotEnvelope(snap, enc)
			return snap, nil
		}
	}
	return nil, fmt.Errorf("oplog: replica too hot to snapshot (updates landed on every attempt)")
}

// EncodeSnapshot serializes snap, preferring the form frozen by
// TakeSnapshot; a snapshot assembled at rest (decoded, or built in tests)
// is serialized fresh under the fragmentation's read lock.
func EncodeSnapshot(snap *Snapshot) ([]byte, error) {
	if snap.enc != nil {
		return snap.enc, nil
	}
	enc, err := encodeSnapshotState(snap)
	if err != nil {
		return nil, err
	}
	if snap.Fingerprint == 0 {
		snap.Fingerprint = snap.Fr.Fingerprint()
	}
	return finishSnapshotEnvelope(snap, enc), nil
}

// snapshotState is the state portion of the envelope: graph text,
// assignment text, tombstone list and persisted index blobs, captured
// under one read lock.
type snapshotState struct {
	graph, assign []byte
	dead          []uint32

	idxBudget int64
	idxPolicy reachindex.Policy
	idx       []idxSnapEntry
}

// idxSnapEntry is one fragment's serialized reachability index.
type idxSnapEntry struct {
	fragID uint32
	blob   []byte
}

// encodeSnapshotState captures the fragmentation state under its read
// lock, so a concurrent update never tears it.
func encodeSnapshotState(snap *Snapshot) (*snapshotState, error) {
	if len(snap.Partitioner) > 0xFF {
		return nil, fmt.Errorf("oplog: partitioner name of %d bytes out of range", len(snap.Partitioner))
	}
	var gbuf, abuf bytes.Buffer
	snap.Fr.RLock()
	g := snap.Fr.Graph()
	gerr := graph.Write(&gbuf, g)
	aerr := fragment.Write(&abuf, snap.Fr)
	var dead []uint32
	for v := 0; v < g.NumNodes(); v++ {
		if g.Deleted(graph.NodeID(v)) {
			dead = append(dead, uint32(v))
		}
	}
	st := &snapshotState{}
	if b := snap.Fr.ReachIndexBudget(); b > 0 {
		st.idxBudget = b
		st.idxPolicy = snap.Fr.ReachIndexPolicy()
		for _, f := range snap.Fr.Fragments() {
			// Only a fresh index over overlay-free storage survives the
			// round trip: overlay-free means the live slot numbering is the
			// canonical Build order that fragment.Read reproduces on decode,
			// so the slot-speaking index blob still describes the rebuilt
			// fragment. Stale or mid-rebuild fragments are simply omitted —
			// the recovered replica backfills them asynchronously.
			if f.OverlayEntries() != 0 {
				continue
			}
			idx := f.ReachIndex()
			if idx == nil || idx.AnyStale() {
				continue
			}
			blob, err := idx.MarshalBinary()
			if err != nil {
				continue
			}
			st.idx = append(st.idx, idxSnapEntry{fragID: uint32(f.ID), blob: blob})
		}
	}
	snap.Fr.RUnlock()
	if gerr != nil {
		return nil, gerr
	}
	if aerr != nil {
		return nil, aerr
	}
	st.graph, st.assign, st.dead = gbuf.Bytes(), abuf.Bytes(), dead
	return st, nil
}

// finishSnapshotEnvelope assembles the final envelope from the identity
// fields and a captured state.
func finishSnapshotEnvelope(snap *Snapshot, st *snapshotState) []byte {
	b := make([]byte, 0, len(snapMagic)+2+len(snap.Partitioner)+36+len(st.graph)+len(st.assign)+4*len(st.dead)+4)
	b = append(b, snapMagic...)
	b = append(b, snapVersion, byte(len(snap.Partitioner)))
	b = append(b, snap.Partitioner...)
	b = binary.LittleEndian.AppendUint64(b, snap.Seed)
	b = binary.LittleEndian.AppendUint64(b, snap.LSN)
	b = binary.LittleEndian.AppendUint64(b, snap.Epoch)
	b = binary.LittleEndian.AppendUint64(b, snap.Fingerprint)
	b = binary.LittleEndian.AppendUint32(b, uint32(len(st.graph)))
	b = append(b, st.graph...)
	b = binary.LittleEndian.AppendUint32(b, uint32(len(st.assign)))
	b = append(b, st.assign...)
	b = binary.LittleEndian.AppendUint32(b, uint32(len(st.dead)))
	for _, v := range st.dead {
		b = binary.LittleEndian.AppendUint32(b, v)
	}
	b = appendIndexSection(b, snap, st)
	return b
}

// appendIndexSection writes the ilen-prefixed index section, stamping it
// with the envelope's LSN and fingerprint so a decoder can tell whether
// the indexes describe the state it is restoring.
func appendIndexSection(b []byte, snap *Snapshot, st *snapshotState) []byte {
	snap.IndexFrags = len(st.idx)
	if len(st.idx) == 0 {
		return binary.LittleEndian.AppendUint32(b, 0)
	}
	ilen := 8 + 8 + 8 + 1 + 4
	for _, e := range st.idx {
		ilen += 4 + 4 + 4 + len(e.blob)
	}
	b = binary.LittleEndian.AppendUint32(b, uint32(ilen))
	b = binary.LittleEndian.AppendUint64(b, snap.LSN)
	b = binary.LittleEndian.AppendUint64(b, snap.Fingerprint)
	b = binary.LittleEndian.AppendUint64(b, uint64(st.idxBudget))
	b = append(b, byte(st.idxPolicy))
	b = binary.LittleEndian.AppendUint32(b, uint32(len(st.idx)))
	for _, e := range st.idx {
		b = binary.LittleEndian.AppendUint32(b, e.fragID)
		b = binary.LittleEndian.AppendUint32(b, uint32(len(e.blob)))
		b = binary.LittleEndian.AppendUint32(b, crc32.Checksum(e.blob, crcTable))
		b = append(b, e.blob...)
	}
	return b
}

// DecodeSnapshot parses and verifies a snapshot: the envelope is
// bounds-checked against hostile input, the fragmentation is rebuilt, its
// fingerprint must equal the recorded one, and the recorded partitioner is
// re-attached so live node placement stays deterministic across replicas.
func DecodeSnapshot(p []byte) (*Snapshot, error) {
	r := NewCursor(p)
	magic, err := r.Bytes(uint32(len(snapMagic)))
	if err != nil || string(magic) != snapMagic {
		return nil, fmt.Errorf("oplog: not a snapshot (bad magic)")
	}
	ver, err := r.U8()
	if err != nil {
		return nil, err
	}
	if ver != snapVersion && ver != snapVersionNoIndex {
		return nil, fmt.Errorf("oplog: unsupported snapshot version %d", ver)
	}
	nlen, err := r.U8()
	if err != nil {
		return nil, err
	}
	name, err := r.Bytes(uint32(nlen))
	if err != nil {
		return nil, err
	}
	snap := &Snapshot{Partitioner: string(name)}
	if snap.Seed, err = r.U64(); err != nil {
		return nil, err
	}
	if snap.LSN, err = r.U64(); err != nil {
		return nil, err
	}
	if snap.Epoch, err = r.U64(); err != nil {
		return nil, err
	}
	if snap.Fingerprint, err = r.U64(); err != nil {
		return nil, err
	}
	glen, err := r.U32()
	if err != nil {
		return nil, err
	}
	gtext, err := r.Bytes(glen)
	if err != nil {
		return nil, err
	}
	alen, err := r.U32()
	if err != nil {
		return nil, err
	}
	atext, err := r.Bytes(alen)
	if err != nil {
		return nil, err
	}
	dlen, err := r.U32()
	if err != nil {
		return nil, err
	}
	if uint64(dlen)*4 > uint64(r.Remaining()) {
		return nil, fmt.Errorf("oplog: snapshot claims %d tombstones in %d bytes", dlen, r.Remaining())
	}
	dead := make([]uint32, 0, dlen)
	for i := 0; i < int(dlen); i++ {
		v, err := r.U32()
		if err != nil {
			return nil, err
		}
		dead = append(dead, v)
	}
	var isec []byte
	if ver >= snapVersion {
		ilen, err := r.U32()
		if err != nil {
			return nil, err
		}
		if isec, err = r.Bytes(ilen); err != nil {
			return nil, err
		}
	}
	if err := r.Done(); err != nil {
		return nil, err
	}
	g, err := graph.Read(bytes.NewReader(gtext))
	if err != nil {
		return nil, fmt.Errorf("oplog: snapshot graph: %w", err)
	}
	// Re-tombstone in ascending ID order, so the free-slot list (which a
	// later insert consumes lowest-first) matches the snapshotted state.
	for _, v := range dead {
		if int(v) >= g.NumNodes() || !g.DeleteNode(graph.NodeID(v)) {
			return nil, fmt.Errorf("oplog: snapshot tombstone %d invalid", v)
		}
	}
	fr, err := fragment.Read(bytes.NewReader(atext), g)
	if err != nil {
		return nil, fmt.Errorf("oplog: snapshot assignment: %w", err)
	}
	if snap.Partitioner != "" {
		part, err := fragment.ByName(snap.Partitioner, snap.Seed)
		if err != nil {
			return nil, fmt.Errorf("oplog: snapshot partitioner: %w", err)
		}
		fr.SetPartitioner(part)
	}
	if fp := fr.Fingerprint(); fp != snap.Fingerprint {
		return nil, fmt.Errorf("oplog: snapshot fingerprint mismatch (recorded %x, rebuilt %x)", snap.Fingerprint, fp)
	}
	snap.Fr = fr
	snap.IndexFrags = adoptIndexSection(fr, snap, isec)
	return snap, nil
}

// adoptIndexSection validates the persisted index section against the
// freshly rebuilt fragmentation and, when everything checks out, installs
// the indexes and records the budget/policy so the replica serves indexed
// answers immediately. Any anomaly — the section stamped with a different
// LSN or fingerprint than the envelope (a stale index), a CRC or codec
// failure, an unknown fragment, a slot-count mismatch — abandons the
// whole section and returns 0: the snapshot itself is still good, and the
// replica rebuilds its indexes the ordinary asynchronous way. All-or-
// nothing adoption keeps the failure mode boring; partial adoption would
// work too but is harder to reason about in tests.
func adoptIndexSection(fr *fragment.Fragmentation, snap *Snapshot, isec []byte) int {
	if len(isec) == 0 {
		return 0
	}
	r := NewCursor(isec)
	lsn, err := r.U64()
	if err != nil || lsn != snap.LSN {
		return 0
	}
	fp, err := r.U64()
	if err != nil || fp != snap.Fingerprint {
		return 0
	}
	budget, err := r.U64()
	if err != nil || budget == 0 || budget > 1<<62 {
		return 0
	}
	polByte, err := r.U8()
	if err != nil {
		return 0
	}
	policy := reachindex.Policy(polByte)
	if policy > reachindex.PolicyHits {
		return 0
	}
	count, err := r.U32()
	if err != nil {
		return 0
	}
	frags := fr.Fragments()
	type adopted struct {
		fragID int
		idx    *reachindex.Index
	}
	entries := make([]adopted, 0, count)
	for i := 0; i < int(count); i++ {
		fragID, err := r.U32()
		if err != nil {
			return 0
		}
		blen, err := r.U32()
		if err != nil {
			return 0
		}
		crc, err := r.U32()
		if err != nil {
			return 0
		}
		blob, err := r.Bytes(blen)
		if err != nil || crc32.Checksum(blob, crcTable) != crc {
			return 0
		}
		idx, err := reachindex.UnmarshalBinary(blob)
		if err != nil {
			return 0
		}
		var f *fragment.Fragment
		for _, cand := range frags {
			if cand.ID == int(fragID) {
				f = cand
				break
			}
		}
		if f == nil || idx.NumSlots() != f.NumTotal() {
			return 0
		}
		entries = append(entries, adopted{fragID: int(fragID), idx: idx})
	}
	if r.Done() != nil {
		return 0
	}
	fr.ConfigureReachIndex(int64(budget), policy)
	for _, e := range entries {
		fr.AdoptReachIndex(e.fragID, e.idx)
	}
	return len(entries)
}
