package oplog

import (
	"bytes"
	"encoding/binary"
	"fmt"

	"distreach/internal/fragment"
	"distreach/internal/graph"
)

// Snapshot is a checkpoint of the whole fragmentation state at an LSN: the
// graph, the node-to-fragment assignment, the deployment epoch, and the
// partitioner that places live-inserted nodes. A snapshot plus the log
// records after its LSN reconstructs the deployment state exactly; the
// fingerprint (fragment.Fingerprint over graph + assignment) is verified
// on decode, so a truncated or bit-rotted snapshot fails loudly instead of
// seeding a silently diverged replica.
type Snapshot struct {
	LSN         uint64
	Epoch       uint64
	Fingerprint uint64
	Partitioner string // "" = none attached (least-loaded placement)
	Seed        uint64
	Fr          *fragment.Fragmentation

	// enc caches the serialized form captured atomically with the identity
	// fields (TakeSnapshot); EncodeSnapshot returns it when present so a
	// snapshot of a live replica can never be re-serialized against a
	// graph that moved on since the LSN was recorded.
	enc []byte
}

// Snapshot envelope (little-endian):
//
//	magic "DRSNAP" | version u8 | nlen u8 | partitioner name |
//	seed u64 | lsn u64 | epoch u64 | fingerprint u64 |
//	glen u32 | graph text (graph.Write) |
//	alen u32 | assignment text (fragment.Write) |
//	dlen u32 | tombstoned node IDs u32 each (ascending)
//
// The graph text codec does not record tombstones (slots freed by node
// deletion, whose IDs a later insert reuses), so the envelope carries them
// explicitly and the decoder re-deletes those slots before rebuilding the
// fragmentation — ID assignment stays deterministic across a snapshot
// round trip.
const (
	snapMagic   = "DRSNAP"
	snapVersion = 1
)

// TakeSnapshot captures the replica state behind rep as a Snapshot whose
// serialized form is frozen together with its identity: the state is
// encoded, then the replica is re-checked — if an update or rebalance
// landed meanwhile (new LSN, epoch, or a swapped fragmentation) the
// attempt is thrown away and retried, so the recorded LSN and fingerprint
// always describe exactly the encoded bytes.
func TakeSnapshot(rep *fragment.Replica) (*Snapshot, error) {
	for attempt := 0; attempt < 8; attempt++ {
		fr, epoch, lsn := rep.State()
		name, seed := fragment.Describe(fr.Partitioner())
		snap := &Snapshot{LSN: lsn, Epoch: epoch, Partitioner: name, Seed: seed, Fr: fr}
		enc, err := encodeSnapshotState(snap)
		if err != nil {
			return nil, err
		}
		snap.Fingerprint = fr.Fingerprint()
		if fr2, e2, l2 := rep.State(); l2 == lsn && e2 == epoch && fr2 == fr {
			snap.enc = finishSnapshotEnvelope(snap, enc)
			return snap, nil
		}
	}
	return nil, fmt.Errorf("oplog: replica too hot to snapshot (updates landed on every attempt)")
}

// EncodeSnapshot serializes snap, preferring the form frozen by
// TakeSnapshot; a snapshot assembled at rest (decoded, or built in tests)
// is serialized fresh under the fragmentation's read lock.
func EncodeSnapshot(snap *Snapshot) ([]byte, error) {
	if snap.enc != nil {
		return snap.enc, nil
	}
	enc, err := encodeSnapshotState(snap)
	if err != nil {
		return nil, err
	}
	if snap.Fingerprint == 0 {
		snap.Fingerprint = snap.Fr.Fingerprint()
	}
	return finishSnapshotEnvelope(snap, enc), nil
}

// snapshotState is the state portion of the envelope: graph text,
// assignment text and tombstone list, captured under one read lock.
type snapshotState struct {
	graph, assign []byte
	dead          []uint32
}

// encodeSnapshotState captures the fragmentation state under its read
// lock, so a concurrent update never tears it.
func encodeSnapshotState(snap *Snapshot) (*snapshotState, error) {
	if len(snap.Partitioner) > 0xFF {
		return nil, fmt.Errorf("oplog: partitioner name of %d bytes out of range", len(snap.Partitioner))
	}
	var gbuf, abuf bytes.Buffer
	snap.Fr.RLock()
	g := snap.Fr.Graph()
	gerr := graph.Write(&gbuf, g)
	aerr := fragment.Write(&abuf, snap.Fr)
	var dead []uint32
	for v := 0; v < g.NumNodes(); v++ {
		if g.Deleted(graph.NodeID(v)) {
			dead = append(dead, uint32(v))
		}
	}
	snap.Fr.RUnlock()
	if gerr != nil {
		return nil, gerr
	}
	if aerr != nil {
		return nil, aerr
	}
	return &snapshotState{graph: gbuf.Bytes(), assign: abuf.Bytes(), dead: dead}, nil
}

// finishSnapshotEnvelope assembles the final envelope from the identity
// fields and a captured state.
func finishSnapshotEnvelope(snap *Snapshot, st *snapshotState) []byte {
	b := make([]byte, 0, len(snapMagic)+2+len(snap.Partitioner)+36+len(st.graph)+len(st.assign)+4*len(st.dead)+4)
	b = append(b, snapMagic...)
	b = append(b, snapVersion, byte(len(snap.Partitioner)))
	b = append(b, snap.Partitioner...)
	b = binary.LittleEndian.AppendUint64(b, snap.Seed)
	b = binary.LittleEndian.AppendUint64(b, snap.LSN)
	b = binary.LittleEndian.AppendUint64(b, snap.Epoch)
	b = binary.LittleEndian.AppendUint64(b, snap.Fingerprint)
	b = binary.LittleEndian.AppendUint32(b, uint32(len(st.graph)))
	b = append(b, st.graph...)
	b = binary.LittleEndian.AppendUint32(b, uint32(len(st.assign)))
	b = append(b, st.assign...)
	b = binary.LittleEndian.AppendUint32(b, uint32(len(st.dead)))
	for _, v := range st.dead {
		b = binary.LittleEndian.AppendUint32(b, v)
	}
	return b
}

// DecodeSnapshot parses and verifies a snapshot: the envelope is
// bounds-checked against hostile input, the fragmentation is rebuilt, its
// fingerprint must equal the recorded one, and the recorded partitioner is
// re-attached so live node placement stays deterministic across replicas.
func DecodeSnapshot(p []byte) (*Snapshot, error) {
	r := NewCursor(p)
	magic, err := r.Bytes(uint32(len(snapMagic)))
	if err != nil || string(magic) != snapMagic {
		return nil, fmt.Errorf("oplog: not a snapshot (bad magic)")
	}
	ver, err := r.U8()
	if err != nil {
		return nil, err
	}
	if ver != snapVersion {
		return nil, fmt.Errorf("oplog: unsupported snapshot version %d", ver)
	}
	nlen, err := r.U8()
	if err != nil {
		return nil, err
	}
	name, err := r.Bytes(uint32(nlen))
	if err != nil {
		return nil, err
	}
	snap := &Snapshot{Partitioner: string(name)}
	if snap.Seed, err = r.U64(); err != nil {
		return nil, err
	}
	if snap.LSN, err = r.U64(); err != nil {
		return nil, err
	}
	if snap.Epoch, err = r.U64(); err != nil {
		return nil, err
	}
	if snap.Fingerprint, err = r.U64(); err != nil {
		return nil, err
	}
	glen, err := r.U32()
	if err != nil {
		return nil, err
	}
	gtext, err := r.Bytes(glen)
	if err != nil {
		return nil, err
	}
	alen, err := r.U32()
	if err != nil {
		return nil, err
	}
	atext, err := r.Bytes(alen)
	if err != nil {
		return nil, err
	}
	dlen, err := r.U32()
	if err != nil {
		return nil, err
	}
	if uint64(dlen)*4 > uint64(r.Remaining()) {
		return nil, fmt.Errorf("oplog: snapshot claims %d tombstones in %d bytes", dlen, r.Remaining())
	}
	dead := make([]uint32, 0, dlen)
	for i := 0; i < int(dlen); i++ {
		v, err := r.U32()
		if err != nil {
			return nil, err
		}
		dead = append(dead, v)
	}
	if err := r.Done(); err != nil {
		return nil, err
	}
	g, err := graph.Read(bytes.NewReader(gtext))
	if err != nil {
		return nil, fmt.Errorf("oplog: snapshot graph: %w", err)
	}
	// Re-tombstone in ascending ID order, so the free-slot list (which a
	// later insert consumes lowest-first) matches the snapshotted state.
	for _, v := range dead {
		if int(v) >= g.NumNodes() || !g.DeleteNode(graph.NodeID(v)) {
			return nil, fmt.Errorf("oplog: snapshot tombstone %d invalid", v)
		}
	}
	fr, err := fragment.Read(bytes.NewReader(atext), g)
	if err != nil {
		return nil, fmt.Errorf("oplog: snapshot assignment: %w", err)
	}
	if snap.Partitioner != "" {
		part, err := fragment.ByName(snap.Partitioner, snap.Seed)
		if err != nil {
			return nil, fmt.Errorf("oplog: snapshot partitioner: %w", err)
		}
		fr.SetPartitioner(part)
	}
	if fp := fr.Fingerprint(); fp != snap.Fingerprint {
		return nil, fmt.Errorf("oplog: snapshot fingerprint mismatch (recorded %x, rebuilt %x)", snap.Fingerprint, fp)
	}
	snap.Fr = fr
	return snap, nil
}
