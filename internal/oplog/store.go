package oplog

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"distreach/internal/fragment"
)

// Store is a directory holding one process's durable state: the segmented
// record log plus the snapshot files that bound replay. Both the gateway
// (its write-ahead log of every sequenced batch) and cmd/site (its applied
// batches and local checkpoints) use one.
type Store struct {
	dir string
	log *Log

	mu      sync.Mutex
	snapLSN uint64 // LSN of the newest snapshot on disk; 0 = none
}

// OpenStore opens (or creates) the store in dir and recovers its state:
// segments are scanned (recovering the last LSN even when the log is
// empty — the segment header pins it) and the newest snapshot is located.
func OpenStore(dir string, opts LogOptions) (*Store, error) {
	l, err := OpenLog(dir, opts)
	if err != nil {
		return nil, err
	}
	st := &Store{dir: dir, log: l}
	names, err := filepath.Glob(filepath.Join(dir, "snap-*.snap"))
	if err != nil {
		l.Close()
		return nil, fmt.Errorf("oplog: %w", err)
	}
	sort.Strings(names)
	if len(names) > 0 {
		var lsn uint64
		if _, err := fmt.Sscanf(filepath.Base(names[len(names)-1]), "snap-%x.snap", &lsn); err != nil {
			l.Close()
			return nil, fmt.Errorf("oplog: bad snapshot name %q", names[len(names)-1])
		}
		st.snapLSN = lsn
	}
	return st, nil
}

// Log exposes the store's record log.
func (st *Store) Log() *Log { return st.log }

// Dir reports the store's directory.
func (st *Store) Dir() string { return st.dir }

// SnapshotLSN reports the LSN of the newest snapshot on disk (0 = none).
func (st *Store) SnapshotLSN() uint64 {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.snapLSN
}

// LastLSN reports the highest LSN the store knows: the log's last record
// or the newest snapshot, whichever is later.
func (st *Store) LastLSN() uint64 {
	lsn := st.log.LastLSN()
	if s := st.SnapshotLSN(); s > lsn {
		lsn = s
	}
	return lsn
}

func (st *Store) snapPath(lsn uint64) string {
	return filepath.Join(st.dir, fmt.Sprintf("snap-%016x.snap", lsn))
}

// SaveSnapshot writes snap durably (write to a temp file, fsync, rename),
// then truncates the log through snap.LSN and removes older snapshots —
// the prefix they cover is now redundant.
func (st *Store) SaveSnapshot(snap *Snapshot) error {
	b, err := EncodeSnapshot(snap)
	if err != nil {
		return err
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	if snap.LSN <= st.snapLSN && st.snapLSN != 0 {
		return nil // an equal or newer snapshot already exists
	}
	tmp := filepath.Join(st.dir, "snap.tmp")
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("oplog: %w", err)
	}
	if _, err := f.Write(b); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("oplog: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("oplog: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("oplog: %w", err)
	}
	if err := os.Rename(tmp, st.snapPath(snap.LSN)); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("oplog: %w", err)
	}
	old := st.snapLSN
	st.snapLSN = snap.LSN
	if old != 0 {
		os.Remove(st.snapPath(old))
	}
	if err := st.log.TruncateThrough(snap.LSN); err != nil {
		return err
	}
	// A snapshot installed over the wire may be ahead of the local log (the
	// records it covers were never received); jump the log forward so later
	// appends extend the order from the snapshot.
	return st.log.AdvanceTo(snap.LSN)
}

// LoadSnapshot reads and verifies the newest snapshot. ok is false when
// the store holds none.
func (st *Store) LoadSnapshot() (*Snapshot, bool, error) {
	st.mu.Lock()
	lsn := st.snapLSN
	st.mu.Unlock()
	if lsn == 0 {
		return nil, false, nil
	}
	b, err := os.ReadFile(st.snapPath(lsn))
	if err != nil {
		return nil, false, fmt.Errorf("oplog: %w", err)
	}
	snap, err := DecodeSnapshot(b)
	if err != nil {
		return nil, false, err
	}
	return snap, true, nil
}

// Close closes the underlying log.
func (st *Store) Close() error { return st.log.Close() }

// Recover rebuilds a replica from the store: the newest snapshot when one
// exists (otherwise the caller-supplied base state at LSN 0), with every
// log record after it replayed in order. This is what a restarted site
// boots from — its state then trails the deployment only by whatever it
// missed while down, which catch-up replication streams over the wire.
func Recover(st *Store, base *fragment.Fragmentation) (*fragment.Replica, error) {
	fr, epoch, lsn := base, uint64(0), uint64(0)
	if snap, ok, err := st.LoadSnapshot(); err != nil {
		return nil, err
	} else if ok {
		fr, epoch, lsn = snap.Fr, snap.Epoch, snap.LSN
	}
	rep := fragment.NewReplicaAt(fr, epoch, lsn)
	recs, ok, err := st.log.ReadFrom(lsn + 1)
	if err != nil {
		return nil, err
	}
	if !ok {
		return nil, fmt.Errorf("oplog: log does not reach back to LSN %d (snapshot missing?)", lsn+1)
	}
	for _, rec := range recs {
		if _, advanced, err := rep.ApplyLSN(rec.LSN, 0, rec.Ops); err != nil && !advanced {
			// A record that advanced with an error is a recorded rejection —
			// a deterministic no-op slot of the total order. Anything else
			// (a gap, a stale record) means the store is inconsistent.
			return nil, fmt.Errorf("oplog: replay of record %d failed: %w", rec.LSN, err)
		}
	}
	return rep, nil
}
