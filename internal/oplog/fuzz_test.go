package oplog

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"

	"distreach/internal/fragment"
)

// FuzzOpsCodec throws arbitrary bytes at the shared batch-ops codec (log
// records, update frames and sync replay frames all embed it): whatever
// decodes must re-encode byte-identically; the rest must be rejected with
// an error, never a panic or an implausible allocation.
func FuzzOpsCodec(f *testing.F) {
	seed, err := AppendOps(nil, []fragment.Op{
		{Kind: fragment.OpInsertEdge, U: 1, V: 2},
		{Kind: fragment.OpDeleteEdge, U: 0xFFFFFF, V: 0},
		{Kind: fragment.OpInsertNode, Label: "A", Frag: -1},
		{Kind: fragment.OpDeleteNode, U: 7},
	})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seed)
	empty, err := AppendOps(nil, nil)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(empty)
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF})       // hostile count
	f.Add(seed[:len(seed)-2])                   // truncated op
	f.Add(append(seed[:5], 'z', 0, 0, 0, 0, 0)) // unknown kind
	f.Fuzz(func(t *testing.T, data []byte) {
		r := NewCursor(data)
		ops, err := ReadOps(r)
		if err != nil || r.Done() != nil {
			return
		}
		re, err := AppendOps(nil, ops)
		if err != nil {
			t.Fatalf("re-encode of decoded ops failed: %v", err)
		}
		if !bytes.Equal(re, data) {
			t.Fatalf("ops round trip drifted")
		}
	})
}

// FuzzSegmentScan throws arbitrary file contents at the segment scanner
// and record reader: a crashed or corrupted log file must never panic the
// recovery path — a torn tail is dropped, garbage is rejected.
func FuzzSegmentScan(f *testing.F) {
	// A well-formed segment with two records.
	hdr := make([]byte, segHeaderSize)
	copy(hdr, segMagic)
	hdr[5] = segVersion
	binary.LittleEndian.PutUint64(hdr[8:], 0)
	seg := append([]byte(nil), hdr...)
	for lsn := uint64(1); lsn <= 2; lsn++ {
		body := binary.LittleEndian.AppendUint64(nil, lsn)
		body, _ = AppendOps(body, []fragment.Op{{Kind: fragment.OpInsertEdge, U: 0, V: 1}})
		frame := make([]byte, recHeaderSize+len(body))
		binary.LittleEndian.PutUint32(frame, uint32(len(body)))
		binary.LittleEndian.PutUint32(frame[4:], crc32.Checksum(body, crcTable))
		copy(frame[recHeaderSize:], body)
		seg = append(seg, frame...)
	}
	f.Add(seg)
	f.Add(seg[:len(seg)-3])               // torn tail
	f.Add(hdr)                            // empty segment
	f.Add([]byte("DRWAL"))                // truncated header
	f.Add(bytes.Repeat([]byte{0xA5}, 64)) // garbage
	mut := append([]byte(nil), seg...)
	mut[segHeaderSize+recHeaderSize+2] ^= 0xFF // corrupt first record body
	f.Add(mut)

	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		path := filepath.Join(dir, segName(0))
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		seg, err := scanSegment(path, true)
		if err != nil {
			return // rejecting is legal; not panicking is the property
		}
		if seg.size > int64(len(data)) {
			t.Fatalf("scan claims %d bytes of a %d-byte file", seg.size, len(data))
		}
		recs, err := readSegmentRecords(seg)
		if err != nil {
			t.Fatalf("records the scanner accepted failed to read: %v", err)
		}
		last := seg.base
		for _, r := range recs {
			if r.LSN != last+1 {
				t.Fatalf("record LSNs not contiguous: %d after %d", r.LSN, last)
			}
			last = r.LSN
		}
		if last != seg.last {
			t.Fatalf("scan says last=%d, records end at %d", seg.last, last)
		}
	})
}
