package oplog

import (
	"errors"
	"fmt"
	"sync"

	"distreach/internal/fragment"
)

// ErrNotDelivered marks a broadcast failure in which the batch reached no
// replica at all. Wrapped into the error a Submit broadcast returns, it
// lets an in-memory sequencer roll the assigned LSN back: with no log and
// no replica holding the batch, keeping the LSN would leave a hole in the
// order that nothing could ever fill.
var ErrNotDelivered = errors.New("oplog: batch reached no replica")

// Sequencer assigns one monotonic LSN to every update batch of a
// deployment and (when durable) write-ahead logs the batch before it is
// broadcast. Every writer — however many coordinators or gateways front
// the deployment — must submit through the same sequencer: that is what
// turns interleaved update streams into one total order the replicas can
// enforce. Submit holds the order lock across the broadcast, so batch N+1
// never reaches a replica before batch N.
//
// A durable sequencer resumes exactly where it stopped: the log's segment
// headers pin the last assigned LSN even when every record has been
// truncated away, so a restarted gateway extends the order instead of
// forking it (the failure the old random-seq-base scheme had).
type Sequencer struct {
	mu   sync.Mutex
	last uint64
	log  *Log // nil: in-memory order only
}

// NewSequencer starts an in-memory sequencer whose next LSN is last+1.
func NewSequencer(last uint64) *Sequencer {
	return &Sequencer{last: last}
}

// NewDurableSequencer resumes the order recorded in the store: the next
// LSN follows the newest record or snapshot, and every submitted batch is
// appended to the store's log before it is broadcast.
func NewDurableSequencer(st *Store) *Sequencer {
	return &Sequencer{last: st.LastLSN(), log: st.Log()}
}

// LSN reports the last assigned LSN.
func (s *Sequencer) LSN() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.last
}

// Durable reports whether submitted batches are write-ahead logged.
func (s *Sequencer) Durable() bool { return s.log != nil }

// Advance raises the sequencer to at least lsn. Used when a fresh
// in-memory sequencer fronts a deployment that already has history: the
// coordinator adopts the replicas' LSN before its first submit so it
// extends the order.
func (s *Sequencer) Advance(lsn uint64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if lsn <= s.last {
		return nil
	}
	if s.log != nil {
		// The deployment is ahead of the write-ahead log — records were lost
		// (a deleted WAL directory, say). Jump the log forward so the order
		// stays intact; the lost prefix was only needed to catch up replicas
		// older than it, which snapshot transfer covers.
		if err := s.log.AdvanceTo(lsn); err != nil {
			return err
		}
	}
	s.last = lsn
	return nil
}

// Submit assigns the next LSN to ops, appends the record to the log when
// durable (fsync per the log's policy), then runs broadcast while holding
// the order lock. When the sequencer is durable the LSN is consumed even
// if broadcast fails: the record is in the log, so replicas that missed
// it catch up from there — at-least-once delivery under one total order.
// An in-memory sequencer has no such backstop, so a broadcast that
// reached no replica at all (ErrNotDelivered) rolls the LSN back — the
// batch exists nowhere, and keeping the number would wedge every later
// update behind a hole nothing can fill.
func (s *Sequencer) Submit(ops []fragment.Op, broadcast func(lsn uint64) error) (uint64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	lsn := s.last + 1
	if s.log != nil {
		if err := s.log.Append(Record{LSN: lsn, Ops: ops}); err != nil {
			return 0, fmt.Errorf("oplog: write-ahead append: %w", err)
		}
	}
	s.last = lsn
	err := broadcast(lsn)
	if err != nil && s.log == nil && errors.Is(err, ErrNotDelivered) {
		s.last = lsn - 1
	}
	return lsn, err
}
