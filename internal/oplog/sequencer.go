package oplog

import (
	"errors"
	"fmt"
	"sync"

	"distreach/internal/fragment"
)

// ErrNotDelivered marks a broadcast failure in which the batch reached no
// replica at all. Wrapped into the error a Submit broadcast returns, it
// lets an in-memory sequencer roll the assigned LSN back: with no log and
// no replica holding the batch, keeping the LSN would leave a hole in the
// order that nothing could ever fill.
var ErrNotDelivered = errors.New("oplog: batch reached no replica")

// Sequencer assigns one monotonic LSN to every update batch of a
// deployment and (when durable) write-ahead logs the batch before it is
// broadcast. Every writer — however many coordinators or gateways front
// the deployment — must submit through the same sequencer: that is what
// turns interleaved update streams into one total order the replicas can
// enforce. Broadcasts run strictly in LSN order (an in-memory sequencer
// holds the order lock across the broadcast; a durable one hands out
// broadcast turns by LSN ticket), so batch N+1 never reaches a replica
// before batch N.
//
// Durable submits group-commit: the order lock covers only LSN
// assignment and the unflushed WAL frame, then concurrent submitters
// share one coalesced fsync (Log.SyncCommit) and take their broadcast
// turn. Under fsync=always this turns N concurrent submits into a
// handful of fsyncs instead of N serialized ones — the dominant cost on
// the N6 throughput table.
//
// A durable sequencer resumes exactly where it stopped: the log's segment
// headers pin the last assigned LSN even when every record has been
// truncated away, so a restarted gateway extends the order instead of
// forking it (the failure the old random-seq-base scheme had).
type Sequencer struct {
	mu   sync.Mutex
	last uint64
	log  *Log // nil: in-memory order only

	// Broadcast turnstile for the durable path: bnext is the LSN whose
	// broadcast runs next; a submitter waits on bcond until its ticket
	// comes up, broadcasts while holding bmu, then advances bnext. The
	// in-memory path never touches these (it broadcasts under mu).
	bmu   sync.Mutex
	bcond *sync.Cond
	bnext uint64
}

// NewSequencer starts an in-memory sequencer whose next LSN is last+1.
func NewSequencer(last uint64) *Sequencer {
	return newSequencer(last, nil)
}

// NewDurableSequencer resumes the order recorded in the store: the next
// LSN follows the newest record or snapshot, and every submitted batch is
// appended to the store's log before it is broadcast.
func NewDurableSequencer(st *Store) *Sequencer {
	return newSequencer(st.LastLSN(), st.Log())
}

func newSequencer(last uint64, log *Log) *Sequencer {
	s := &Sequencer{last: last, log: log, bnext: last + 1}
	s.bcond = sync.NewCond(&s.bmu)
	return s
}

// LSN reports the last assigned LSN.
func (s *Sequencer) LSN() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.last
}

// Durable reports whether submitted batches are write-ahead logged.
func (s *Sequencer) Durable() bool { return s.log != nil }

// Advance raises the sequencer to at least lsn. Used when a fresh
// in-memory sequencer fronts a deployment that already has history: the
// coordinator adopts the replicas' LSN before its first submit so it
// extends the order.
func (s *Sequencer) Advance(lsn uint64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if lsn <= s.last {
		return nil
	}
	if s.log != nil {
		// The deployment is ahead of the write-ahead log — records were lost
		// (a deleted WAL directory, say). Jump the log forward so the order
		// stays intact; the lost prefix was only needed to catch up replicas
		// older than it, which snapshot transfer covers.
		if err := s.log.AdvanceTo(lsn); err != nil {
			return err
		}
	}
	s.last = lsn
	// Raise the broadcast turnstile past the adopted prefix, or durable
	// submits after the jump would wait for broadcasts that never ran.
	s.bmu.Lock()
	if lsn+1 > s.bnext {
		s.bnext = lsn + 1
		s.bcond.Broadcast()
	}
	s.bmu.Unlock()
	return nil
}

// Submit assigns the next LSN to ops, write-ahead logs the batch when
// durable, then broadcasts it — broadcasts always in LSN order. When the
// sequencer is durable the LSN is consumed even if broadcast fails: the
// record is in the log, so replicas that missed it catch up from there —
// at-least-once delivery under one total order. An in-memory sequencer
// has no such backstop, so a broadcast that reached no replica at all
// (ErrNotDelivered) rolls the LSN back — the batch exists nowhere, and
// keeping the number would wedge every later update behind a hole
// nothing can fill.
//
// The durable path group-commits: the order lock covers only the LSN
// assignment and the unflushed WAL frame; the fsync is coalesced across
// concurrent submitters (Log.SyncCommit) and the broadcast runs under
// the LSN turnstile. A batch whose flush failed still takes (and
// releases) its broadcast turn — without broadcasting — so one bad flush
// cannot wedge the turnstile; its LSN stands, and replicas cross the gap
// by log replay or snapshot transfer.
func (s *Sequencer) Submit(ops []fragment.Op, broadcast func(lsn uint64) error) (uint64, error) {
	if s.log == nil {
		s.mu.Lock()
		defer s.mu.Unlock()
		lsn := s.last + 1
		s.last = lsn
		err := broadcast(lsn)
		if err != nil && errors.Is(err, ErrNotDelivered) {
			s.last = lsn - 1
		}
		return lsn, err
	}
	s.mu.Lock()
	lsn := s.last + 1
	seq, err := s.log.AppendNoSync(Record{LSN: lsn, Ops: ops})
	if err != nil {
		s.mu.Unlock()
		return 0, fmt.Errorf("oplog: write-ahead append: %w", err)
	}
	s.last = lsn
	s.mu.Unlock()
	syncErr := s.log.SyncCommit(seq)
	s.bmu.Lock()
	for s.bnext != lsn {
		s.bcond.Wait()
	}
	var err2 error
	if syncErr == nil {
		err2 = broadcast(lsn)
	}
	s.bnext = lsn + 1
	s.bcond.Broadcast()
	s.bmu.Unlock()
	if syncErr != nil {
		return lsn, fmt.Errorf("oplog: write-ahead sync: %w", syncErr)
	}
	return lsn, err2
}
