// Package cluster simulates the distributed substrate the paper deploys on
// Amazon EC2: one site per fragment plus a coordinator site Sc. Sites are
// real goroutines, so the "partial evaluation is conducted in parallel at
// each site" property is exercised with genuine parallelism; message
// exchange is accounted (bytes, message count, and — crucially for the
// paper's guarantees — the number of visits to each site) rather than
// moved over a physical network.
//
// A NetModel optionally converts the accounted traffic into modeled network
// time on the critical path, so that harness results reflect shipping costs
// that an in-process simulation would otherwise hide. Tests run with the
// zero NetModel (no modeled latency).
package cluster

import (
	"fmt"
	"sync"
	"time"
)

// Coordinator is the pseudo-site index used in traffic accounting for the
// coordinator Sc.
const Coordinator = -1

// NetModel describes the simulated interconnect.
type NetModel struct {
	// Latency is the fixed per-message one-way delay.
	Latency time.Duration
	// BytesPerSecond is the link bandwidth; 0 means infinite.
	BytesPerSecond float64
}

// Cost returns the modeled transfer time for one message of the given size.
func (m NetModel) Cost(bytes int) time.Duration {
	d := m.Latency
	if m.BytesPerSecond > 0 {
		d += time.Duration(float64(bytes) / m.BytesPerSecond * float64(time.Second))
	}
	return d
}

// Cluster is a reusable description of a deployment: the number of sites and
// the interconnect model. Create one Run per query evaluation.
type Cluster struct {
	k   int
	net NetModel
}

// New returns a cluster of k sites with the given interconnect model.
func New(k int, net NetModel) *Cluster {
	if k <= 0 {
		panic(fmt.Sprintf("cluster: site count %d must be positive", k))
	}
	return &Cluster{k: k, net: net}
}

// K reports the number of sites.
func (c *Cluster) K() int { return c.k }

// Net returns the interconnect model.
func (c *Cluster) Net() NetModel { return c.net }

// Run accumulates the accounting for one distributed query evaluation. All
// methods are safe for concurrent use by site goroutines.
type Run struct {
	c  *Cluster
	mu sync.Mutex

	visits  []int64 // messages delivered to each site
	bytes   int64   // total bytes shipped (all directions)
	toCoord int64   // bytes shipped to the coordinator
	msgs    int64
	rounds  int // communication rounds (supersteps for BSP baselines)

	busy time.Duration // measured compute on the critical path
	net  time.Duration // modeled network time on the critical path
}

// NewRun returns a fresh accounting context.
func (c *Cluster) NewRun() *Run {
	return &Run{c: c, visits: make([]int64, c.k)}
}

// Post accounts a coordinator-to-site message of the given size: it counts
// one visit to the site, per the paper's visit metric ("each site is visited
// only once, when the coordinator site posts the input query").
func (r *Run) Post(site, bytes int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.visits[site]++
	r.bytes += int64(bytes)
	r.msgs++
}

// Reply accounts a site-to-coordinator message. Replies do not count as
// visits to any worker site.
func (r *Run) Reply(site, bytes int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.bytes += int64(bytes)
	r.toCoord += int64(bytes)
	r.msgs++
}

// Route accounts a site-to-site message (delivered via the master in the
// message-passing baselines): one visit to the destination site.
func (r *Run) Route(from, to, bytes int) {
	_ = from
	r.mu.Lock()
	defer r.mu.Unlock()
	r.visits[to]++
	r.bytes += int64(bytes)
	r.msgs++
}

// Parallel runs fn(site) for every site concurrently (one goroutine per
// site, as one machine per fragment in the paper's deployment), measures the
// wall time of the slowest site, and adds it to the critical-path compute
// time. It returns the measured duration.
func (r *Run) Parallel(fn func(site int)) time.Duration {
	start := time.Now()
	var wg sync.WaitGroup
	wg.Add(r.c.k)
	for i := 0; i < r.c.k; i++ {
		go func(site int) {
			defer wg.Done()
			fn(site)
		}(i)
	}
	wg.Wait()
	d := time.Since(start)
	r.mu.Lock()
	r.busy += d
	r.mu.Unlock()
	return d
}

// Sequential measures fn (coordinator-side work such as assembling) and adds
// it to the critical-path compute time.
func (r *Run) Sequential(fn func()) time.Duration {
	start := time.Now()
	fn()
	d := time.Since(start)
	r.mu.Lock()
	r.busy += d
	r.mu.Unlock()
	return d
}

// NetPhase adds the modeled time of one communication phase in which
// messages travel in parallel; the phase costs as much as its largest
// message. Use maxBytes = the largest message in the phase.
func (r *Run) NetPhase(maxBytes int) {
	d := r.c.net.Cost(maxBytes)
	r.mu.Lock()
	r.net += d
	r.mu.Unlock()
}

// NetSerial adds the modeled time of msgs messages relayed one after
// another through a single choke point (the master of the message-passing
// baselines): every message pays the latency, and the bytes share the
// link sequentially.
func (r *Run) NetSerial(totalBytes, msgs int) {
	d := time.Duration(msgs) * r.c.net.Latency
	if r.c.net.BytesPerSecond > 0 {
		d += time.Duration(float64(totalBytes) / r.c.net.BytesPerSecond * float64(time.Second))
	}
	r.mu.Lock()
	r.net += d
	r.mu.Unlock()
}

// AddRound records one communication round (superstep).
func (r *Run) AddRound() {
	r.mu.Lock()
	r.rounds++
	r.mu.Unlock()
}

// Report is the outcome accounting of one evaluation.
type Report struct {
	Visits      []int64       // per-site message deliveries
	TotalVisits int64         // sum of Visits
	MaxVisits   int64         // max over sites
	Bytes       int64         // total network traffic in bytes
	BytesCoord  int64         // portion shipped to the coordinator
	Messages    int64         // message count
	Rounds      int           // communication rounds
	Compute     time.Duration // measured compute on the critical path
	NetTime     time.Duration // modeled network time on the critical path
	Response    time.Duration // Compute + NetTime
}

// Finish snapshots the accounting into a Report.
func (r *Run) Finish() Report {
	r.mu.Lock()
	defer r.mu.Unlock()
	rep := Report{
		Visits:     append([]int64(nil), r.visits...),
		Bytes:      r.bytes,
		BytesCoord: r.toCoord,
		Messages:   r.msgs,
		Rounds:     r.rounds,
		Compute:    r.busy,
		NetTime:    r.net,
	}
	for _, v := range rep.Visits {
		rep.TotalVisits += v
		if v > rep.MaxVisits {
			rep.MaxVisits = v
		}
	}
	rep.Response = rep.Compute + rep.NetTime
	return rep
}

// Merge accumulates o into rep (used to aggregate reports over query sets).
func (rep *Report) Merge(o Report) {
	if len(rep.Visits) < len(o.Visits) {
		rep.Visits = append(rep.Visits, make([]int64, len(o.Visits)-len(rep.Visits))...)
	}
	for i, v := range o.Visits {
		rep.Visits[i] += v
	}
	rep.TotalVisits += o.TotalVisits
	if o.MaxVisits > rep.MaxVisits {
		rep.MaxVisits = o.MaxVisits
	}
	rep.Bytes += o.Bytes
	rep.BytesCoord += o.BytesCoord
	rep.Messages += o.Messages
	rep.Rounds += o.Rounds
	rep.Compute += o.Compute
	rep.NetTime += o.NetTime
	rep.Response += o.Response
}

// String summarizes the report.
func (rep Report) String() string {
	return fmt.Sprintf("report{visits=%d, bytes=%d, msgs=%d, rounds=%d, response=%v}",
		rep.TotalVisits, rep.Bytes, rep.Messages, rep.Rounds, rep.Response)
}
