package cluster

import (
	"sync/atomic"
	"testing"
	"time"
)

func TestNetModelCost(t *testing.T) {
	free := NetModel{}
	if free.Cost(1<<20) != 0 {
		t.Fatal("free network should cost nothing")
	}
	m := NetModel{Latency: time.Millisecond, BytesPerSecond: 1e6}
	// 1 MB over 1 MB/s plus 1 ms latency ≈ 1.001 s.
	got := m.Cost(1e6)
	if got < time.Second || got > time.Second+10*time.Millisecond {
		t.Fatalf("cost = %v", got)
	}
}

func TestRunAccounting(t *testing.T) {
	cl := New(3, NetModel{})
	run := cl.NewRun()
	for i := 0; i < 3; i++ {
		run.Post(i, 10)
	}
	run.Reply(1, 100)
	run.Route(0, 2, 50)
	rep := run.Finish()
	if rep.TotalVisits != 4 { // 3 posts + 1 route
		t.Fatalf("visits = %d", rep.TotalVisits)
	}
	if rep.Visits[2] != 2 || rep.Visits[1] != 1 {
		t.Fatalf("per-site visits = %v", rep.Visits)
	}
	if rep.Bytes != 30+100+50 {
		t.Fatalf("bytes = %d", rep.Bytes)
	}
	if rep.BytesCoord != 100 {
		t.Fatalf("coordinator bytes = %d", rep.BytesCoord)
	}
	if rep.Messages != 5 {
		t.Fatalf("messages = %d", rep.Messages)
	}
	if rep.MaxVisits != 2 {
		t.Fatalf("max visits = %d", rep.MaxVisits)
	}
}

func TestParallelRunsEverySiteConcurrently(t *testing.T) {
	cl := New(8, NetModel{})
	run := cl.NewRun()
	var count atomic.Int32
	d := run.Parallel(func(site int) {
		count.Add(1)
	})
	if count.Load() != 8 {
		t.Fatalf("ran %d sites", count.Load())
	}
	rep := run.Finish()
	if rep.Compute < d {
		t.Fatal("parallel time not accumulated")
	}
}

func TestNetPhaseAccumulates(t *testing.T) {
	cl := New(1, NetModel{Latency: time.Millisecond})
	run := cl.NewRun()
	run.NetPhase(0)
	run.NetPhase(0)
	rep := run.Finish()
	if rep.NetTime != 2*time.Millisecond {
		t.Fatalf("net time = %v", rep.NetTime)
	}
	if rep.Response != rep.Compute+rep.NetTime {
		t.Fatal("response must be compute + net")
	}
}

func TestMerge(t *testing.T) {
	cl := New(2, NetModel{})
	r1 := cl.NewRun()
	r1.Post(0, 5)
	a := r1.Finish()
	r2 := cl.NewRun()
	r2.Post(1, 7)
	r2.Post(1, 7)
	b := r2.Finish()
	a.Merge(b)
	if a.TotalVisits != 3 || a.Bytes != 19 || a.Visits[1] != 2 {
		t.Fatalf("merge wrong: %+v", a)
	}
	if a.MaxVisits != 2 {
		t.Fatalf("merge max visits: %d", a.MaxVisits)
	}
}

func TestNewPanicsOnBadK(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(0) should panic")
		}
	}()
	New(0, NetModel{})
}

func TestRounds(t *testing.T) {
	cl := New(1, NetModel{})
	run := cl.NewRun()
	run.AddRound()
	run.AddRound()
	if rep := run.Finish(); rep.Rounds != 2 {
		t.Fatalf("rounds = %d", rep.Rounds)
	}
}

func TestNetSerial(t *testing.T) {
	cl := New(2, NetModel{Latency: time.Millisecond, BytesPerSecond: 1e6})
	run := cl.NewRun()
	// 5 messages totalling 1 MB: 5 ms latency + 1 s transfer.
	run.NetSerial(1e6, 5)
	rep := run.Finish()
	want := 5*time.Millisecond + time.Second
	if rep.NetTime < want-10*time.Millisecond || rep.NetTime > want+10*time.Millisecond {
		t.Fatalf("serial net time = %v, want ≈%v", rep.NetTime, want)
	}
	// Infinite bandwidth: only latency counts.
	cl2 := New(1, NetModel{Latency: time.Millisecond})
	run2 := cl2.NewRun()
	run2.NetSerial(1e9, 3)
	if rep := run2.Finish(); rep.NetTime != 3*time.Millisecond {
		t.Fatalf("latency-only serial time = %v", rep.NetTime)
	}
}

func TestSequentialAccumulates(t *testing.T) {
	cl := New(1, NetModel{})
	run := cl.NewRun()
	ran := false
	run.Sequential(func() { ran = true })
	if !ran {
		t.Fatal("sequential body not executed")
	}
	if rep := run.Finish(); rep.Compute < 0 {
		t.Fatal("compute time negative")
	}
}

func TestReportString(t *testing.T) {
	cl := New(1, NetModel{})
	run := cl.NewRun()
	run.Post(0, 10)
	rep := run.Finish()
	if s := rep.String(); s == "" {
		t.Fatal("empty report string")
	}
	if cl.Net() != (NetModel{}) {
		t.Fatal("net model accessor wrong")
	}
	if cl.K() != 1 {
		t.Fatal("site count accessor wrong")
	}
}
