package mapreduce

import (
	"fmt"

	"distreach/internal/bes"
	"distreach/internal/core"
	"distreach/internal/fragment"
	"distreach/internal/graph"
)

// The paper notes that MRdRPQ "can be easily adapted to evaluate (bounded)
// reachability queries, which are special cases of regular reachability
// queries". This file is that adaptation: MRdReach and MRdDist reuse the
// same partition/map/shuffle/reduce structure with localEval (resp.
// localEvald) as the Map function and evalDG (resp. evalDGd) as the Reduce
// function.

// MRdReach evaluates the reachability query qr(s, t) on MapReduce.
func MRdReach(g *graph.Graph, s, t graph.NodeID, mappers int) (bool, Stats, error) {
	fr, err := fragment.Contiguous(g, mappers)
	if err != nil {
		return false, Stats{}, fmt.Errorf("mapreduce: parG failed: %w", err)
	}
	if s == t {
		return true, Stats{Mappers: mappers, Reducers: 1}, nil
	}
	inputs := make([]Pair[int, *fragment.Fragment], 0, fr.Card())
	for i, f := range fr.Fragments() {
		inputs = append(inputs, Pair[int, *fragment.Fragment]{Key: i, Value: f})
	}
	job := Job[int, *fragment.Fragment, int, *core.ReachPartial, bool]{
		Map: func(_ int, f *fragment.Fragment, emit func(int, *core.ReachPartial)) {
			emit(1, core.LocalEvalReach(f, s, t, nil))
		},
		Reduce: func(_ int, rvsets []*core.ReachPartial) bool {
			return core.SolveReach(rvsets, s)
		},
		InputBytes: func(_ int, f *fragment.Fragment) int { return f.EncodedSize() + 12 },
		InterBytes: func(_ int, rv *core.ReachPartial) int {
			// Boundary-variable space is not in scope here; use a generous
			// sparse-only estimate.
			return rv.WireSize(1 << 20)
		},
		Reducers: 1,
	}
	results, st := Run(job, inputs, mappers)
	for _, r := range results {
		if r.Key == 1 {
			return r.Value, st, nil
		}
	}
	return false, st, nil
}

// MRdDist evaluates the bounded reachability query qbr(s, t, l) on
// MapReduce. It returns the answer and the exact distance when it is
// within l (bes.Inf otherwise).
func MRdDist(g *graph.Graph, s, t graph.NodeID, l, mappers int) (bool, int64, Stats, error) {
	fr, err := fragment.Contiguous(g, mappers)
	if err != nil {
		return false, bes.Inf, Stats{}, fmt.Errorf("mapreduce: parG failed: %w", err)
	}
	if s == t {
		return l >= 0, 0, Stats{Mappers: mappers, Reducers: 1}, nil
	}
	if l <= 0 {
		return false, bes.Inf, Stats{Mappers: mappers, Reducers: 1}, nil
	}
	inputs := make([]Pair[int, *fragment.Fragment], 0, fr.Card())
	for i, f := range fr.Fragments() {
		inputs = append(inputs, Pair[int, *fragment.Fragment]{Key: i, Value: f})
	}
	job := Job[int, *fragment.Fragment, int, *core.DistPartial, int64]{
		Map: func(_ int, f *fragment.Fragment, emit func(int, *core.DistPartial)) {
			emit(1, core.LocalEvalDist(f, s, t, l))
		},
		Reduce: func(_ int, rvsets []*core.DistPartial) int64 {
			return core.SolveDist(rvsets, s)
		},
		InputBytes: func(_ int, f *fragment.Fragment) int { return f.EncodedSize() + 12 },
		Reducers:   1,
	}
	results, st := Run(job, inputs, mappers)
	for _, r := range results {
		if r.Key == 1 {
			return r.Value <= int64(l), r.Value, st, nil
		}
	}
	return false, bes.Inf, st, nil
}
