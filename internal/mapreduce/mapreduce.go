// Package mapreduce is a small in-process MapReduce framework [7] with the
// elapsed-communication-cost (ECC) accounting of Afrati and Ullman [1] used
// in Section 6 of the paper. It reproduces the phase structure of Hadoop:
// the coordinator partitions the input into key/value pairs, mappers run the
// Map function in parallel, intermediate pairs are hash-partitioned by key
// to reducers, and reducers run the Reduce function.
//
// A process path runs coordinator -> mapper -> reducer; its cost is the
// size of the input shipped to the nodes on the path. The ECC of a job is
// the maximum cost over all process paths. ECC does not count in-memory
// compute; wall-clock compute is reported separately.
package mapreduce

import (
	"sort"
	"sync"
	"time"
)

// Pair is a key/value pair.
type Pair[K comparable, V any] struct {
	Key   K
	Value V
}

// Job describes one MapReduce computation from (K1, V1) inputs through
// (K2, V2) intermediates to per-key results of type R.
type Job[K1 comparable, V1 any, K2 comparable, V2 any, R any] struct {
	// Map processes one input pair on a mapper, emitting intermediates.
	Map func(k K1, v V1, emit func(K2, V2))
	// Reduce folds all intermediates of one key on a reducer.
	Reduce func(k K2, vs []V2) R
	// InputBytes accounts the wire size of one input pair (coordinator to
	// mapper). Nil means 16 bytes.
	InputBytes func(K1, V1) int
	// InterBytes accounts the wire size of one intermediate pair (mapper to
	// reducer). Nil means 16 bytes.
	InterBytes func(K2, V2) int
	// Reducers is the number of reducer slots (>= 1). Intermediates are
	// hash-partitioned over them by key.
	Reducers int
}

// Stats reports the cost accounting of one job execution.
type Stats struct {
	Mappers        int
	Reducers       int
	MapperInBytes  []int64       // input shipped to each mapper
	ReducerInBytes []int64       // input shipped to each reducer
	ECC            int64         // max process-path cost
	TotalBytes     int64         // all data shipped
	MapWall        time.Duration // wall time of the parallel map phase
	ReduceWall     time.Duration // wall time of the parallel reduce phase
}

// Run executes the job with one mapper per input pair slot: input pair i is
// assigned to mapper i%mappers, mirroring Hadoop's input splits. It returns
// the per-key results (in deterministic key-hash order along with their
// keys) and the accounting.
func Run[K1 comparable, V1 any, K2 comparable, V2 any, R any](
	job Job[K1, V1, K2, V2, R],
	inputs []Pair[K1, V1],
	mappers int,
) ([]Pair[K2, R], Stats) {
	if mappers <= 0 {
		mappers = 1
	}
	reducers := job.Reducers
	if reducers <= 0 {
		reducers = 1
	}
	inBytes := job.InputBytes
	if inBytes == nil {
		inBytes = func(K1, V1) int { return 16 }
	}
	interBytes := job.InterBytes
	if interBytes == nil {
		interBytes = func(K2, V2) int { return 16 }
	}
	st := Stats{
		Mappers:        mappers,
		Reducers:       reducers,
		MapperInBytes:  make([]int64, mappers),
		ReducerInBytes: make([]int64, reducers),
	}
	// Assign inputs to mappers round-robin (Hadoop input splits).
	split := make([][]Pair[K1, V1], mappers)
	for i, p := range inputs {
		m := i % mappers
		split[m] = append(split[m], p)
		st.MapperInBytes[m] += int64(inBytes(p.Key, p.Value))
	}

	// Map phase: one goroutine per mapper.
	type emitted struct {
		pairs []Pair[K2, V2]
		bytes int64
	}
	out := make([]emitted, mappers)
	start := time.Now()
	var wg sync.WaitGroup
	wg.Add(mappers)
	for m := 0; m < mappers; m++ {
		go func(m int) {
			defer wg.Done()
			for _, p := range split[m] {
				job.Map(p.Key, p.Value, func(k K2, v V2) {
					out[m].pairs = append(out[m].pairs, Pair[K2, V2]{k, v})
					out[m].bytes += int64(interBytes(k, v))
				})
			}
		}(m)
	}
	wg.Wait()
	st.MapWall = time.Since(start)

	// Shuffle: hash-partition intermediates by key over the reducers.
	groups := make([]map[K2][]V2, reducers)
	for r := range groups {
		groups[r] = make(map[K2][]V2)
	}
	mapperToReducer := make([]int64, mappers)
	for m := range out {
		for _, p := range out[m].pairs {
			r := hashKey(p.Key) % uint64(reducers)
			groups[r][p.Key] = append(groups[r][p.Key], p.Value)
			b := int64(interBytes(p.Key, p.Value))
			st.ReducerInBytes[r] += b
			mapperToReducer[m] += b
		}
	}

	// Reduce phase: one goroutine per reducer.
	results := make([][]Pair[K2, R], reducers)
	start = time.Now()
	wg.Add(reducers)
	for r := 0; r < reducers; r++ {
		go func(r int) {
			defer wg.Done()
			for k, vs := range groups[r] {
				results[r] = append(results[r], Pair[K2, R]{k, job.Reduce(k, vs)})
			}
		}(r)
	}
	wg.Wait()
	st.ReduceWall = time.Since(start)

	// ECC: max over process paths (coordinator -> mapper m -> reducer) of
	// the data shipped along the path's edges.
	for m := 0; m < mappers; m++ {
		if c := st.MapperInBytes[m] + mapperToReducer[m]; c > st.ECC {
			st.ECC = c
		}
	}
	for m := 0; m < mappers; m++ {
		st.TotalBytes += st.MapperInBytes[m] + mapperToReducer[m]
	}
	var all []Pair[K2, R]
	for r := range results {
		all = append(all, results[r]...)
	}
	sort.Slice(all, func(i, j int) bool { return hashKey(all[i].Key) < hashKey(all[j].Key) })
	return all, st
}

// hashKey hashes arbitrary comparable keys via fmt-free reflection on the
// common cases; for other types it falls back to a stable constant, which
// degrades distribution but never correctness.
func hashKey(k any) uint64 {
	switch v := k.(type) {
	case int:
		return mix(uint64(v))
	case int32:
		return mix(uint64(v))
	case int64:
		return mix(uint64(v))
	case uint64:
		return mix(v)
	case string:
		h := uint64(14695981039346656037)
		for i := 0; i < len(v); i++ {
			h ^= uint64(v[i])
			h *= 1099511628211
		}
		return h
	default:
		return 0
	}
}

func mix(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	return x
}
