package mapreduce

import (
	"strings"
	"testing"

	"distreach/internal/automaton"
	"distreach/internal/gen"
	"distreach/internal/graph"
	"distreach/internal/rx"
)

func TestWordCount(t *testing.T) {
	docs := []Pair[int, string]{
		{0, "a b a"},
		{1, "b c"},
		{2, "a"},
	}
	job := Job[int, string, string, int, int]{
		Map: func(_ int, doc string, emit func(string, int)) {
			for _, w := range strings.Fields(doc) {
				emit(w, 1)
			}
		},
		Reduce: func(_ string, counts []int) int {
			n := 0
			for _, c := range counts {
				n += c
			}
			return n
		},
		Reducers: 2,
	}
	out, st := Run(job, docs, 3)
	got := map[string]int{}
	for _, p := range out {
		got[p.Key] = p.Value
	}
	want := map[string]int{"a": 3, "b": 2, "c": 1}
	for k, v := range want {
		if got[k] != v {
			t.Errorf("count[%s] = %d, want %d", k, got[k], v)
		}
	}
	if st.Mappers != 3 || st.Reducers != 2 {
		t.Errorf("stats mappers/reducers = %d/%d, want 3/2", st.Mappers, st.Reducers)
	}
	if st.ECC <= 0 || st.TotalBytes <= 0 {
		t.Errorf("accounting missing: ECC=%d total=%d", st.ECC, st.TotalBytes)
	}
}

func TestRunSingleMapperAndEmptyInput(t *testing.T) {
	job := Job[int, int, int, int, int]{
		Map:    func(k, v int, emit func(int, int)) { emit(k%2, v) },
		Reduce: func(_ int, vs []int) int { return len(vs) },
	}
	out, _ := Run(job, nil, 0)
	if len(out) != 0 {
		t.Fatalf("empty input produced %d results", len(out))
	}
	out, _ = Run(job, []Pair[int, int]{{1, 10}, {2, 20}, {3, 30}}, 1)
	got := map[int]int{}
	for _, p := range out {
		got[p.Key] = p.Value
	}
	if got[0] != 1 || got[1] != 2 {
		t.Fatalf("grouping wrong: %v", got)
	}
}

func TestMRdRPQMatchesOracle(t *testing.T) {
	rng := gen.NewRNG(77)
	labels := []string{"A", "B", "C"}
	for trial := 0; trial < 150; trial++ {
		n := 2 + rng.Intn(50)
		g := gen.Uniform(gen.Config{Nodes: n, Edges: rng.Intn(4 * n), Labels: labels, Seed: rng.Uint64()})
		s := graph.NodeID(rng.Intn(n))
		tt := graph.NodeID(rng.Intn(n))
		a := automaton.Random(rng, 2+rng.Intn(6), 4+rng.Intn(10), labels)
		mappers := 1 + rng.Intn(6)
		res, err := MRdRPQ(g, s, tt, a, mappers)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if want := automaton.Eval(g, s, tt, a); res.Answer != want {
			t.Fatalf("trial %d: MRdRPQ=%v oracle=%v (s=%d t=%d mappers=%d %v)",
				trial, res.Answer, want, s, tt, mappers, g)
		}
	}
}

func TestMRdRPQFigureExample(t *testing.T) {
	// A labeled chain s -> A -> A -> t must satisfy A* but not B+.
	b := graph.NewBuilder(4)
	s := b.AddNode("S")
	x := b.AddNode("A")
	y := b.AddNode("A")
	tt := b.AddNode("T")
	b.AddEdge(s, x)
	b.AddEdge(x, y)
	b.AddEdge(y, tt)
	g := b.MustBuild()
	star := automaton.FromRegex(rx.MustParse("A*"))
	res, err := MRdRPQ(g, s, tt, star, 2)
	if err != nil || !res.Answer {
		t.Fatalf("A* chain: answer=%v err=%v", res.Answer, err)
	}
	plus := automaton.FromRegex(rx.MustParse("B+"))
	res, err = MRdRPQ(g, s, tt, plus, 2)
	if err != nil || res.Answer {
		t.Fatalf("B+ chain: answer=%v err=%v", res.Answer, err)
	}
	if res.Stats.ECC <= 0 {
		t.Errorf("ECC not accounted: %+v", res.Stats)
	}
}

func TestMRdRPQScalesMappers(t *testing.T) {
	g := gen.PowerLaw(gen.Config{Nodes: 500, Edges: 2000, Labels: gen.LabelAlphabet(5), Seed: 3})
	a := automaton.FromRegex(rx.MustParse("L0 (L1|L2)*"))
	for _, mappers := range []int{1, 2, 5, 10} {
		res, err := MRdRPQ(g, 0, 499, a, mappers)
		if err != nil {
			t.Fatalf("mappers=%d: %v", mappers, err)
		}
		if res.Fragment.Card() != mappers {
			t.Errorf("mappers=%d: fragmentation card=%d", mappers, res.Fragment.Card())
		}
	}
}
