package mapreduce

import (
	"fmt"
	"time"

	"distreach/internal/automaton"
	"distreach/internal/core"
	"distreach/internal/fragment"
	"distreach/internal/graph"
)

// MRdRPQResult reports the outcome and accounting of one MRdRPQ execution.
type MRdRPQResult struct {
	Answer   bool
	Stats    Stats
	Fragment *fragment.Fragmentation // the partition produced by preMRPQ
	PreWall  time.Duration           // coordinator time: automaton + partitioning
}

// MRdRPQ evaluates the regular reachability query qrr(s, t, R) in the
// MapReduce framework (algorithm MRdRPQ, Fig. 10):
//
//   - preMRPQ: the coordinator builds the query automaton Gq(R) and
//     partitions G into K fragments of roughly |G|/K nodes each (parG; we
//     use the contiguous split that mirrors Hadoop's default input splits),
//     then sends pair <i, (Fi, Gq)> to mapper i;
//   - mapRPQ: each mapper runs localEvalr as its Map function, emitting
//     <1, rvset_i>;
//   - reduceRPQ: the single reducer assembles all rvsets with evalDGr and
//     emits <0, ans>.
//
// The ECC is O(|Fm| + |R|²·|Vf|²): the mapper input is one fragment, the
// reducer input is the concatenated partial answers.
func MRdRPQ(g *graph.Graph, s, t graph.NodeID, a *automaton.Automaton, mappers int) (MRdRPQResult, error) {
	start := time.Now()
	fr, err := fragment.Contiguous(g, mappers)
	if err != nil {
		return MRdRPQResult{}, fmt.Errorf("mapreduce: parG failed: %w", err)
	}
	pre := time.Since(start)
	ans, st := MRdRPQOn(fr, s, t, a, mappers)
	return MRdRPQResult{Answer: ans, Stats: st, Fragment: fr, PreWall: pre}, nil
}

// MRdRPQOn runs the map and reduce phases over an existing fragmentation
// (one input pair per fragment); it lets experiments vary the partitioning
// strategy independently of the MapReduce machinery.
func MRdRPQOn(fr *fragment.Fragmentation, s, t graph.NodeID, a *automaton.Automaton, mappers int) (bool, Stats) {
	if s == t && a.AcceptsLabels(nil) {
		return true, Stats{Mappers: mappers, Reducers: 1}
	}
	inputs := make([]Pair[int, *fragment.Fragment], 0, fr.Card())
	for i, f := range fr.Fragments() {
		inputs = append(inputs, Pair[int, *fragment.Fragment]{Key: i, Value: f})
	}
	job := Job[int, *fragment.Fragment, int, *core.RPQPartial, bool]{
		Map: func(_ int, f *fragment.Fragment, emit func(int, *core.RPQPartial)) {
			emit(1, core.LocalEvalRPQ(f, s, t, a))
		},
		Reduce: func(_ int, rvsets []*core.RPQPartial) bool {
			return core.SolveRPQ(rvsets, s, a)
		},
		InputBytes: func(_ int, f *fragment.Fragment) int {
			return f.EncodedSize() + a.EncodedSize()
		},
		InterBytes: func(_ int, rv *core.RPQPartial) int { return rv.WireSize() },
		Reducers:   1,
	}
	results, st := Run(job, inputs, mappers)
	for _, r := range results {
		if r.Key == 1 {
			return r.Value, st
		}
	}
	return false, st
}
