package mapreduce

import (
	"testing"

	"distreach/internal/bes"
	"distreach/internal/gen"
	"distreach/internal/graph"
)

func TestMRdReachMatchesOracle(t *testing.T) {
	rng := gen.NewRNG(88)
	for trial := 0; trial < 150; trial++ {
		n := 2 + rng.Intn(50)
		g := gen.Uniform(gen.Config{Nodes: n, Edges: rng.Intn(4 * n), Seed: rng.Uint64()})
		s := graph.NodeID(rng.Intn(n))
		tt := graph.NodeID(rng.Intn(n))
		mappers := 1 + rng.Intn(6)
		got, st, err := MRdReach(g, s, tt, mappers)
		if err != nil {
			t.Fatal(err)
		}
		if want := g.Reachable(s, tt); got != want {
			t.Fatalf("trial %d: MRdReach=%v oracle=%v (s=%d t=%d mappers=%d)", trial, got, want, s, tt, mappers)
		}
		if s != tt && st.ECC <= 0 {
			t.Fatal("ECC missing")
		}
	}
}

func TestMRdDistMatchesOracle(t *testing.T) {
	rng := gen.NewRNG(89)
	for trial := 0; trial < 150; trial++ {
		n := 2 + rng.Intn(50)
		g := gen.Uniform(gen.Config{Nodes: n, Edges: rng.Intn(4 * n), Seed: rng.Uint64()})
		s := graph.NodeID(rng.Intn(n))
		tt := graph.NodeID(rng.Intn(n))
		l := rng.Intn(10)
		ans, dist, _, err := MRdDist(g, s, tt, l, 1+rng.Intn(5))
		if err != nil {
			t.Fatal(err)
		}
		d := g.Dist(s, tt)
		want := d >= 0 && d <= l
		if ans != want {
			t.Fatalf("trial %d: MRdDist=%v oracle dist=%d l=%d", trial, ans, d, l)
		}
		if want && dist != int64(d) {
			t.Fatalf("trial %d: distance %d, oracle %d", trial, dist, d)
		}
	}
}

func TestMRdDistEdgeCases(t *testing.T) {
	g := gen.Chain([]string{"A"}, 5)
	if ans, d, _, err := MRdDist(g, 2, 2, 0, 2); err != nil || !ans || d != 0 {
		t.Fatalf("s==t: ans=%v d=%d err=%v", ans, d, err)
	}
	if ans, d, _, err := MRdDist(g, 0, 4, 0, 2); err != nil || ans || d != bes.Inf {
		t.Fatalf("l=0: ans=%v d=%d err=%v", ans, d, err)
	}
	if ans, _, err := MRdReach(g, 3, 3, 2); err != nil || !ans {
		t.Fatalf("s==t reach: %v %v", ans, err)
	}
}
