// Package workload provides the experiment inputs of Section 7: dataset
// analogues standing in for the paper's real-life graphs, and random query
// generators for the three query classes.
//
// Substitution note (see DESIGN.md): the paper's SNAP datasets are not
// redistributable inside this offline reproduction, so each is replaced by
// a deterministic synthetic graph with the same |E|/|V| ratio, a power-law
// degree distribution, and the same label-alphabet size, scaled down ~100×
// so that the full experiment suite runs on one machine in minutes. The
// comparisons in the paper are between communication structures of
// algorithms, which depend on degree distribution and fragment cuts rather
// than on the concrete node identities.
package workload

import (
	"distreach/internal/gen"
	"distreach/internal/graph"
)

// Dataset describes one experiment graph.
type Dataset struct {
	Name   string
	V, E   int
	Labels int // size of the label alphabet; 0 for unlabeled graphs
	CardF  int // default fragment count used by the paper for this dataset
	Seed   uint64
}

// Generate materializes the dataset's graph. The result is deterministic in
// the dataset definition.
func (d Dataset) Generate() *graph.Graph {
	cfg := gen.Config{
		Nodes:     d.V,
		Edges:     d.E,
		LabelSkew: 1.0,
		Seed:      d.Seed,
	}
	if d.Labels > 0 {
		cfg.Labels = gen.LabelAlphabet(d.Labels)
	}
	return gen.PowerLaw(cfg)
}

// ReachDatasets are the five unlabeled graphs of Table 2 (Exp-1/Exp-2),
// scaled ~1/100: LiveJournal, WikiTalk, BerkStan, NotreDame, Amazon.
var ReachDatasets = []Dataset{
	{Name: "LiveJournal", V: 25410, E: 200000, CardF: 4, Seed: 101},
	{Name: "WikiTalk", V: 23944, E: 50214, CardF: 4, Seed: 102},
	{Name: "BerkStan", V: 6852, E: 76006, CardF: 4, Seed: 103},
	{Name: "NotreDame", V: 3257, E: 14971, CardF: 4, Seed: 104},
	{Name: "Amazon", V: 2621, E: 12349, CardF: 4, Seed: 105},
}

// LabeledDatasets are the four labeled graphs of Exp-3 (Fig. 11(e)/(f)),
// scaled ~1/100, with the paper's card(F) values: Citation, MEME, Youtube,
// Internet. Alphabet sizes are scaled alongside the node counts so label
// selectivity is preserved.
var LabeledDatasets = []Dataset{
	{Name: "Citation", V: 15723, E: 20840, Labels: 63, CardF: 10, Seed: 201},
	{Name: "MEME", V: 7000, E: 8000, Labels: 128, CardF: 11, Seed: 202},
	{Name: "Youtube", V: 2345, E: 4549, Labels: 12, CardF: 12, Seed: 203},
	{Name: "Internet", V: 580, E: 1035, Labels: 16, CardF: 10, Seed: 204},
}

// ByName returns the dataset with the given name from either registry.
func ByName(name string) (Dataset, bool) {
	for _, d := range ReachDatasets {
		if d.Name == name {
			return d, true
		}
	}
	for _, d := range LabeledDatasets {
		if d.Name == name {
			return d, true
		}
	}
	return Dataset{}, false
}

// Synthetic builds a densification-law graph (|E| = |V|^a with the exponent
// chosen to land near the requested edge count), the growth model of the
// paper's synthetic scalability experiments.
func Synthetic(nodes, edges, labels int, seed uint64) *graph.Graph {
	cfg := gen.Config{Nodes: nodes, Edges: edges, LabelSkew: 1.0, Seed: seed}
	if labels > 0 {
		cfg.Labels = gen.LabelAlphabet(labels)
	}
	return gen.PowerLaw(cfg)
}
