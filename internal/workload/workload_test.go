package workload

import (
	"testing"

	"distreach/internal/automaton"
	"distreach/internal/graph"
)

func TestDatasetsGenerate(t *testing.T) {
	for _, d := range append(append([]Dataset{}, ReachDatasets...), LabeledDatasets...) {
		g := d.Generate()
		if g.NumNodes() != d.V {
			t.Errorf("%s: |V| = %d, want %d", d.Name, g.NumNodes(), d.V)
		}
		if g.NumEdges() == 0 {
			t.Errorf("%s: no edges", d.Name)
		}
		if d.Labels > 0 {
			if l := g.Label(0); l == "" {
				t.Errorf("%s: labeled dataset has empty label", d.Name)
			}
		}
		if err := g.Validate(); err != nil {
			t.Errorf("%s: %v", d.Name, err)
		}
	}
}

func TestByName(t *testing.T) {
	if d, ok := ByName("Youtube"); !ok || d.Labels != 12 {
		t.Fatalf("ByName(Youtube) = %+v, %v", d, ok)
	}
	if _, ok := ByName("nope"); ok {
		t.Fatal("unknown dataset found")
	}
}

func TestReachQueriesMix(t *testing.T) {
	d := Dataset{Name: "test", V: 500, E: 2500, Seed: 5}
	g := d.Generate()
	qs := ReachQueries(g, 100, 0.3, 17)
	if len(qs) != 100 {
		t.Fatalf("got %d queries", len(qs))
	}
	trues := 0
	for _, q := range qs {
		if g.Reachable(q.S, q.T) {
			trues++
		}
	}
	// Aim for ~30%; accept a broad band since the fill-up path is random.
	if trues < 10 || trues > 60 {
		t.Fatalf("true rate %d%%, want around 30%%", trues)
	}
}

func TestReachQueriesDeterministic(t *testing.T) {
	g := Dataset{V: 100, E: 400, Seed: 1}.Generate()
	a := ReachQueries(g, 20, 0.3, 3)
	b := ReachQueries(g, 20, 0.3, 3)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed, different queries")
		}
	}
}

func TestRandomPairsInRange(t *testing.T) {
	g := Dataset{V: 50, E: 100, Seed: 2}.Generate()
	for _, q := range RandomPairs(g, 50, 4) {
		if q.S < 0 || int(q.S) >= 50 || q.T < 0 || int(q.T) >= 50 {
			t.Fatalf("pair out of range: %+v", q)
		}
	}
}

func TestRPQQueriesComplexity(t *testing.T) {
	g := Dataset{V: 300, E: 900, Labels: 10, Seed: 6}.Generate()
	c := Complexity{States: 8, Transitions: 16, Labels: 8}
	qs := RPQQueries(g, 30, c, 7)
	if len(qs) != 30 {
		t.Fatalf("got %d queries", len(qs))
	}
	for _, q := range qs {
		if q.A.NumStates() != 8 {
			t.Fatalf("|Vq| = %d", q.A.NumStates())
		}
		if q.A.NumTransitions() == 0 {
			t.Fatal("no transitions")
		}
		// Every position label must occur in the graph's alphabet.
		for u := 2; u < q.A.NumStates(); u++ {
			if q.A.StateLabel(u) == "" {
				t.Fatal("position without label")
			}
		}
	}
}

func TestDistinctLabelsFallback(t *testing.T) {
	// Unlabeled graph: the generator must still produce automata.
	g := Dataset{V: 20, E: 40, Seed: 8}.Generate()
	qs := RPQQueries(g, 3, Complexity{States: 4, Transitions: 6, Labels: 4}, 9)
	for _, q := range qs {
		if q.A == nil {
			t.Fatal("nil automaton")
		}
	}
	_ = automaton.Start
	_ = graph.None
}
