package workload

import (
	"distreach/internal/automaton"
	"distreach/internal/gen"
	"distreach/internal/graph"
)

// Query is one reachability (or bounded reachability) query endpoint pair.
type Query struct {
	S, T graph.NodeID
}

// ReachQueries generates n random reachability queries over g, aiming for
// the paper's mix of roughly trueRate positive queries ("around 30% return
// true"). Queries are drawn by rejection sampling against a centralized
// reachability check; if the graph cannot supply enough queries of one
// polarity within a bounded number of attempts, the remainder is filled
// with unconstrained random pairs.
func ReachQueries(g *graph.Graph, n int, trueRate float64, seed uint64) []Query {
	rng := gen.NewRNG(seed)
	wantTrue := int(float64(n) * trueRate)
	wantFalse := n - wantTrue
	out := make([]Query, 0, n)
	attempts := 0
	maxAttempts := 50 * n
	for len(out) < n && attempts < maxAttempts {
		attempts++
		s := graph.NodeID(rng.Intn(g.NumNodes()))
		t := graph.NodeID(rng.Intn(g.NumNodes()))
		if s == t {
			continue
		}
		reach := g.Reachable(s, t)
		switch {
		case reach && wantTrue > 0:
			wantTrue--
			out = append(out, Query{s, t})
		case !reach && wantFalse > 0:
			wantFalse--
			out = append(out, Query{s, t})
		}
	}
	for len(out) < n {
		s := graph.NodeID(rng.Intn(g.NumNodes()))
		t := graph.NodeID(rng.Intn(g.NumNodes()))
		out = append(out, Query{s, t})
	}
	return out
}

// RandomPairs generates n unconstrained random (s, t) pairs.
func RandomPairs(g *graph.Graph, n int, seed uint64) []Query {
	rng := gen.NewRNG(seed)
	out := make([]Query, n)
	for i := range out {
		out[i] = Query{
			S: graph.NodeID(rng.Intn(g.NumNodes())),
			T: graph.NodeID(rng.Intn(g.NumNodes())),
		}
	}
	return out
}

// RPQQuery is one regular reachability query: endpoints plus the query
// automaton Gq(R).
type RPQQuery struct {
	S, T graph.NodeID
	A    *automaton.Automaton
}

// Complexity mirrors the paper's query-complexity triples (|Vq|, |Eq|,
// |Lq|), e.g. (8, 16, 8) for the Exp-3 default.
type Complexity struct {
	States, Transitions, Labels int
}

// RPQQueries generates n random regular reachability queries of the given
// complexity over g. Automaton labels are drawn from the labels that
// actually occur in g (the paper draws queries "from a set L of labels" of
// the dataset); endpoints are uniform random nodes.
func RPQQueries(g *graph.Graph, n int, c Complexity, seed uint64) []RPQQuery {
	rng := gen.NewRNG(seed)
	labels := distinctLabels(g, c.Labels)
	out := make([]RPQQuery, n)
	for i := range out {
		out[i] = RPQQuery{
			S: graph.NodeID(rng.Intn(g.NumNodes())),
			T: graph.NodeID(rng.Intn(g.NumNodes())),
			A: automaton.Random(rng, c.States, c.Transitions, labels),
		}
	}
	return out
}

// distinctLabels returns up to want distinct labels occurring in g, by
// frequency of first appearance; if the graph has fewer, all are returned.
func distinctLabels(g *graph.Graph, want int) []string {
	seen := map[string]bool{}
	var out []string
	for v := 0; v < g.NumNodes() && len(out) < want; v++ {
		l := g.Label(graph.NodeID(v))
		if !seen[l] {
			seen[l] = true
			out = append(out, l)
		}
	}
	if len(out) == 0 {
		out = []string{""}
	}
	return out
}
