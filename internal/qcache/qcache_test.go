package qcache

import (
	"fmt"
	"sync"
	"testing"
)

func TestGetPut(t *testing.T) {
	c := New[int](4)
	if _, ok := c.Get("a"); ok {
		t.Fatal("empty cache must miss")
	}
	c.Put("a", 1)
	if v, ok := c.Get("a"); !ok || v != 1 {
		t.Fatalf("got %d,%v want 1,true", v, ok)
	}
	c.Put("a", 2) // refresh
	if v, _ := c.Get("a"); v != 2 {
		t.Fatalf("refresh lost: %d", v)
	}
	if c.Len() != 1 {
		t.Fatalf("len %d want 1", c.Len())
	}
}

func TestLRUEviction(t *testing.T) {
	c := New[int](3)
	c.Put("a", 1)
	c.Put("b", 2)
	c.Put("c", 3)
	c.Get("a")    // a is now most recent; b is least
	c.Put("d", 4) // evicts b
	if _, ok := c.Get("b"); ok {
		t.Fatal("b must have been evicted")
	}
	for _, k := range []string{"a", "c", "d"} {
		if _, ok := c.Get(k); !ok {
			t.Fatalf("%s must have survived", k)
		}
	}
}

func TestFlush(t *testing.T) {
	c := New[int](8)
	c.Put("a", 1)
	c.Put("b", 2)
	c.Flush()
	if c.Len() != 0 {
		t.Fatalf("len %d after flush", c.Len())
	}
	if _, ok := c.Get("a"); ok {
		t.Fatal("flush must drop every entry")
	}
	c.Put("c", 3) // cache stays usable
	if v, ok := c.Get("c"); !ok || v != 3 {
		t.Fatal("cache unusable after flush")
	}
}

func TestGeneration(t *testing.T) {
	c := New[int](8)
	if g := c.Generation(); g != 0 {
		t.Fatalf("fresh cache generation %d, want 0", g)
	}
	c.Put("a", 1)
	c.Get("a")
	if g := c.Generation(); g != 0 {
		t.Fatalf("get/put must not advance the generation (got %d)", g)
	}
	c.Flush()
	c.Flush()
	if g := c.Generation(); g != 2 {
		t.Fatalf("generation %d after two flushes, want 2", g)
	}
}

func TestPutIfGeneration(t *testing.T) {
	c := New[int](8)
	epoch := c.Generation()
	if !c.PutIfGeneration("a", 1, epoch, nil) {
		t.Fatal("put with a current generation must store")
	}
	if v, ok := c.Get("a"); !ok || v != 1 {
		t.Fatalf("got %d,%v want 1,true", v, ok)
	}
	epoch = c.Generation()
	c.Flush()
	if c.PutIfGeneration("b", 2, epoch, nil) {
		t.Fatal("put with a pre-flush generation must be a no-op")
	}
	if _, ok := c.Get("b"); ok {
		t.Fatal("stale answer resurrected across a flush")
	}
	if !c.PutIfGeneration("b", 2, c.Generation(), nil) {
		t.Fatal("put with the post-flush generation must store")
	}
}

func TestStats(t *testing.T) {
	c := New[int](2)
	c.Get("a")
	c.Put("a", 1)
	c.Get("a")
	c.Get("b")
	hits, misses := c.Stats()
	if hits != 1 || misses != 2 {
		t.Fatalf("hits=%d misses=%d want 1,2", hits, misses)
	}
}

func TestTinyCapacity(t *testing.T) {
	c := New[int](0) // rounded up to 1
	c.Put("a", 1)
	c.Put("b", 2)
	if c.Len() != 1 {
		t.Fatalf("len %d want 1", c.Len())
	}
	if _, ok := c.Get("a"); ok {
		t.Fatal("a must have been evicted by b")
	}
}

func TestKeysDisjointAcrossClasses(t *testing.T) {
	keys := []string{ReachKey(1, 2), DistKey(1, 2, 3), RPQKey(1, 2, "A*"), RPQKey(1, 2, "B*")}
	seen := make(map[string]bool)
	for _, k := range keys {
		if seen[k] {
			t.Fatalf("key collision: %s", k)
		}
		seen[k] = true
	}
}

func TestConcurrentAccess(t *testing.T) {
	c := New[int](64)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				k := fmt.Sprintf("k%d", (w*31+i)%100)
				if v, ok := c.Get(k); ok && v < 0 {
					t.Errorf("corrupt value %d", v)
				}
				c.Put(k, i)
				if i%97 == 0 {
					c.Flush()
				}
			}
		}(w)
	}
	wg.Wait()
}

func TestEvictFragmentsPrecision(t *testing.T) {
	c := New[int](16)
	c.PutTagged("a", 1, []int{0, 1})
	c.PutTagged("b", 2, []int{2})
	c.PutTagged("c", 3, []int{1, 2})
	c.Put("const", 4) // tag-free: update-immune
	if n := c.EvictFragments([]int{1}); n != 2 {
		t.Fatalf("evicted %d entries, want 2 (a and c)", n)
	}
	if _, ok := c.Get("a"); ok {
		t.Fatal("a touched fragment 1 and must be gone")
	}
	if _, ok := c.Get("c"); ok {
		t.Fatal("c touched fragment 1 and must be gone")
	}
	if v, ok := c.Get("b"); !ok || v != 2 {
		t.Fatal("b avoided fragment 1 and must survive")
	}
	if v, ok := c.Get("const"); !ok || v != 4 {
		t.Fatal("tag-free entry must survive any eviction")
	}
	if got := c.Evictions(); got != 2 {
		t.Fatalf("Evictions() = %d, want 2", got)
	}
	// An empty dirty set is free and does not advance the generation.
	gen := c.Generation()
	if n := c.EvictFragments(nil); n != 0 {
		t.Fatalf("empty dirty set evicted %d", n)
	}
	if c.Generation() != gen {
		t.Fatal("empty dirty set advanced the generation")
	}
}

func TestEvictFragmentsGuardsInFlightInserts(t *testing.T) {
	c := New[int](8)
	epoch := c.Generation()
	if n := c.EvictFragments([]int{0}); n != 0 {
		t.Fatalf("evicted %d from an empty cache", n)
	}
	// The eviction advanced the generation: an answer computed before the
	// update must not land.
	if c.PutIfGeneration("stale", 1, epoch, []int{3}) {
		t.Fatal("pre-eviction insert must be a no-op")
	}
	if !c.PutIfGeneration("fresh", 2, c.Generation(), []int{3}) {
		t.Fatal("post-eviction insert must store")
	}
}

func TestPutTaggedRefreshesTags(t *testing.T) {
	c := New[int](8)
	c.PutTagged("a", 1, []int{0})
	c.PutTagged("a", 2, []int{5}) // re-tag
	if n := c.EvictFragments([]int{0}); n != 0 {
		t.Fatalf("stale tag evicted %d entries", n)
	}
	if n := c.EvictFragments([]int{5}); n != 1 {
		t.Fatalf("fresh tag evicted %d entries, want 1", n)
	}
}
