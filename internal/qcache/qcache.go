// Package qcache is a small, concurrency-safe LRU cache for distributed
// query answers. The gateway (cmd/serve) fronts the coordinator with it:
// repeat queries — the common shape of heavy read traffic — are answered
// from memory without visiting any site. Keys encode the query class and
// its parameters.
//
// Invalidation is two-grained. Flush empties the cache wholesale (a
// redeploy: the graph or fragmentation behind the answers was swapped).
// For live edge updates there is per-fragment precision: each entry
// carries the set of fragments its answer's evaluation touched (the
// coordinator computes it as the dependency closure of the source
// variable; see core.TouchedReach), and EvictFragments removes exactly the
// entries whose set intersects an update's dirtied fragments — everything
// else keeps serving hits. Both invalidations advance the generation, so
// answers computed over a round trip that raced an invalidation are never
// re-inserted (PutIfGeneration).
package qcache

import (
	"container/list"
	"fmt"
	"sync"

	"distreach/internal/graph"
)

// Cache is a fixed-capacity LRU map from query key to answer.
// The zero value is not usable; create with New.
type Cache[V any] struct {
	mu        sync.Mutex
	cap       int
	ll        *list.List // front = most recently used
	items     map[string]*list.Element
	hits      uint64
	misses    uint64
	evictions uint64 // entries removed by EvictFragments
	gen       uint64 // invalidation generation; see Generation
}

type entry[V any] struct {
	key   string
	val   V
	frags []int // fragments the answer depends on; empty = update-immune
}

// New returns a cache holding at most capacity answers; capacity < 1 is
// rounded up to 1.
func New[V any](capacity int) *Cache[V] {
	if capacity < 1 {
		capacity = 1
	}
	return &Cache[V]{
		cap:   capacity,
		ll:    list.New(),
		items: make(map[string]*list.Element, capacity),
	}
}

// Get looks up key, marking it most recently used on a hit.
func (c *Cache[V]) Get(key string) (V, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		c.hits++
		return el.Value.(*entry[V]).val, true
	}
	c.misses++
	var zero V
	return zero, false
}

// Put stores key's answer with no fragment tags: the entry survives
// EvictFragments and is only dropped by LRU pressure or Flush. Use
// PutTagged (or PutIfGeneration) for answers that depend on fragment
// contents.
func (c *Cache[V]) Put(key string, val V) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.putLocked(key, val, nil)
}

// PutTagged stores key's answer together with the fragments its
// evaluation touched, evicting the least recently used entry when the
// cache is full. Storing an existing key refreshes its value, tags and
// recency. An empty tag set means the answer cannot be affected by any
// edge update (e.g. qr(s,s)).
func (c *Cache[V]) PutTagged(key string, val V, frags []int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.putLocked(key, val, frags)
}

func (c *Cache[V]) putLocked(key string, val V, frags []int) {
	if el, ok := c.items[key]; ok {
		e := el.Value.(*entry[V])
		e.val = val
		e.frags = frags
		c.ll.MoveToFront(el)
		return
	}
	if c.ll.Len() >= c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*entry[V]).key)
	}
	c.items[key] = c.ll.PushFront(&entry[V]{key: key, val: val, frags: frags})
}

// PutIfGeneration stores key's answer (with its fragment tags) only if
// the invalidation generation still equals gen — atomically with respect
// to Flush and EvictFragments — and reports whether it stored. Callers
// snapshot Generation() before computing an answer over a slow round
// trip: an invalidation landing in between turns the insert into a no-op
// instead of resurrecting a stale answer.
func (c *Cache[V]) PutIfGeneration(key string, val V, gen uint64, frags []int) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.gen != gen {
		return false
	}
	c.putLocked(key, val, frags)
	return true
}

// Flush empties the cache: the wholesale invalidation used on redeploy,
// when the graph or fragmentation behind the answers changes entirely. It
// also advances the invalidation generation.
func (c *Cache[V]) Flush() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ll.Init()
	clear(c.items)
	c.gen++
}

// EvictFragments removes every entry whose fragment tags intersect dirty
// and reports how many it removed. Entries whose evaluation did not touch
// a dirtied fragment — including tag-free entries — keep serving hits:
// this is the per-fragment precision that replaces a wholesale flush on
// live edge updates. The invalidation generation advances so in-flight
// rounds cannot re-insert answers computed before the update.
func (c *Cache[V]) EvictFragments(dirty []int) int {
	if len(dirty) == 0 {
		return 0
	}
	isDirty := make(map[int]bool, len(dirty))
	for _, d := range dirty {
		isDirty[d] = true
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	removed := 0
	for el := c.ll.Front(); el != nil; {
		next := el.Next()
		e := el.Value.(*entry[V])
		for _, f := range e.frags {
			if isDirty[f] {
				c.ll.Remove(el)
				delete(c.items, e.key)
				removed++
				break
			}
		}
		el = next
	}
	c.evictions += uint64(removed)
	c.gen++
	return removed
}

// Generation reports the invalidation generation: how many times the
// cache has been invalidated (Flush or EvictFragments). Snapshot it
// before a slow round trip and pass it to PutIfGeneration afterwards so
// an invalidation that raced the round trip is not silently undone by
// re-inserting stale answers.
func (c *Cache[V]) Generation() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.gen
}

// Len reports the number of cached answers.
func (c *Cache[V]) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Stats reports cumulative hits and misses (not reset by Flush).
func (c *Cache[V]) Stats() (hits, misses uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

// Evictions reports the cumulative number of entries removed by
// EvictFragments (LRU and Flush removals are not counted).
func (c *Cache[V]) Evictions() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.evictions
}

// ReachKey is the cache key of qr(s, t).
func ReachKey(s, t graph.NodeID) string {
	return fmt.Sprintf("r:%d:%d", s, t)
}

// DistKey is the cache key of qbr(s, t, l).
func DistKey(s, t graph.NodeID, l int) string {
	return fmt.Sprintf("b:%d:%d:%d", s, t, l)
}

// RPQKey is the cache key of qrr(s, t, R) for the textual expression R.
// Distinct spellings of the same language cache separately — a harmless
// form of under-caching.
func RPQKey(s, t graph.NodeID, expr string) string {
	return fmt.Sprintf("q:%d:%d:%s", s, t, expr)
}
