// Package qcache is a small, concurrency-safe LRU cache for distributed
// query answers. The gateway (cmd/serve) fronts the coordinator with it:
// repeat queries — the common shape of heavy read traffic — are answered
// from memory without visiting any site. Keys encode the query class and
// its parameters; there is no per-entry expiry, because answers on a
// static fragmentation never go stale — the cache is instead invalidated
// wholesale (Flush) whenever the deployment behind it changes.
package qcache

import (
	"container/list"
	"fmt"
	"sync"

	"distreach/internal/graph"
)

// Cache is a fixed-capacity LRU map from query key to answer.
// The zero value is not usable; create with New.
type Cache[V any] struct {
	mu     sync.Mutex
	cap    int
	ll     *list.List // front = most recently used
	items  map[string]*list.Element
	hits   uint64
	misses uint64
	gen    uint64 // flush generation; see Generation
}

type entry[V any] struct {
	key string
	val V
}

// New returns a cache holding at most capacity answers; capacity < 1 is
// rounded up to 1.
func New[V any](capacity int) *Cache[V] {
	if capacity < 1 {
		capacity = 1
	}
	return &Cache[V]{
		cap:   capacity,
		ll:    list.New(),
		items: make(map[string]*list.Element, capacity),
	}
}

// Get looks up key, marking it most recently used on a hit.
func (c *Cache[V]) Get(key string) (V, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		c.hits++
		return el.Value.(*entry[V]).val, true
	}
	c.misses++
	var zero V
	return zero, false
}

// Put stores key's answer, evicting the least recently used entry when
// the cache is full. Storing an existing key refreshes its value and
// recency.
func (c *Cache[V]) Put(key string, val V) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.putLocked(key, val)
}

func (c *Cache[V]) putLocked(key string, val V) {
	if el, ok := c.items[key]; ok {
		el.Value.(*entry[V]).val = val
		c.ll.MoveToFront(el)
		return
	}
	if c.ll.Len() >= c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*entry[V]).key)
	}
	c.items[key] = c.ll.PushFront(&entry[V]{key: key, val: val})
}

// PutIfGeneration stores key's answer only if the flush generation still
// equals gen — atomically with respect to Flush — and reports whether it
// stored. Callers snapshot Generation() before computing an answer over a
// slow round trip: a Flush landing in between turns the insert into a
// no-op instead of resurrecting a pre-flush answer into the flushed cache.
func (c *Cache[V]) PutIfGeneration(key string, val V, gen uint64) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.gen != gen {
		return false
	}
	c.putLocked(key, val)
	return true
}

// Flush empties the cache: the wholesale invalidation used on redeploy,
// when the graph or fragmentation behind the answers changes. It also
// advances the flush generation.
func (c *Cache[V]) Flush() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ll.Init()
	clear(c.items)
	c.gen++
}

// Generation reports the flush generation: how many times the cache has
// been invalidated wholesale. Snapshot it before a slow round trip and
// pass it to PutIfGeneration afterwards so a Flush that raced the round
// trip is not silently undone by re-inserting pre-flush answers.
func (c *Cache[V]) Generation() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.gen
}

// Len reports the number of cached answers.
func (c *Cache[V]) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Stats reports cumulative hits and misses (not reset by Flush).
func (c *Cache[V]) Stats() (hits, misses uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

// ReachKey is the cache key of qr(s, t).
func ReachKey(s, t graph.NodeID) string {
	return fmt.Sprintf("r:%d:%d", s, t)
}

// DistKey is the cache key of qbr(s, t, l).
func DistKey(s, t graph.NodeID, l int) string {
	return fmt.Sprintf("b:%d:%d:%d", s, t, l)
}

// RPQKey is the cache key of qrr(s, t, R) for the textual expression R.
// Distinct spellings of the same language cache separately — a harmless
// form of under-caching.
func RPQKey(s, t graph.NodeID, expr string) string {
	return fmt.Sprintf("q:%d:%d:%s", s, t, expr)
}
