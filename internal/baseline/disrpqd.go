package baseline

import (
	"distreach/internal/automaton"
	"distreach/internal/cluster"
	"distreach/internal/core"
	"distreach/internal/fragment"
	"distreach/internal/graph"
)

// DisRPQD evaluates qrr(s, t, R) following Suciu's algorithm for
// distributed regular path queries on semistructured data [30], the
// comparison point the paper calls disRPQd. Like disRPQ it is based on
// per-site relations rather than node-by-node message passing, but its
// communication pattern differs in the two ways the paper highlights:
//
//   - each site is visited twice: once to receive the query and compute
//     its local boundary relation, and a second time to receive the
//     union of all sites' relations, against which every site computes
//     the global accessibility of its own nodes;
//   - consequently the total network traffic carries the combined
//     relation to every site — a factor card(F) more than disRPQ, which
//     assembles the equations at the coordinator only (bounded by the n²
//     cross-node bound of [30]).
//
// The local computation reuses the same product-graph machinery as
// disRPQ so that the comparison isolates the communication structure.
func DisRPQD(cl *cluster.Cluster, fr *fragment.Fragmentation, s, t graph.NodeID, a *automaton.Automaton) core.Result {
	run := cl.NewRun()
	if s == t && a.AcceptsLabels(nil) {
		return core.Result{Answer: true, Report: run.Finish()}
	}
	frags := fr.Fragments()
	k := fr.Card()

	// Visit 1: the coordinator posts the query automaton to every site;
	// sites compute their boundary relations in parallel and ship them
	// back.
	qBytes := a.EncodedSize() + querySize
	for i := 0; i < k; i++ {
		run.Post(i, qBytes)
	}
	run.NetPhase(qBytes)

	partial := make([]*core.RPQPartial, k)
	run.Parallel(func(site int) {
		partial[site] = core.LocalEvalRPQ(frags[site], s, t, a)
	})
	total := 0
	maxReply := 0
	for i, rv := range partial {
		b := rv.WireSize()
		run.Reply(i, b)
		total += b
		if b > maxReply {
			maxReply = b
		}
	}
	run.NetPhase(maxReply)

	// Visit 2: the coordinator multicasts the union of all relations to
	// every site (k copies of the combined relation ship in parallel, one
	// per downlink), and each site computes the accessibility of its nodes
	// against the global relation. The site owning s reports the answer.
	for i := 0; i < k; i++ {
		run.Post(i, total)
	}
	run.NetPhase(total)
	answers := make([]bool, k)
	run.Parallel(func(site int) {
		answers[site] = core.SolveRPQ(partial, s, a)
	})
	run.Reply(fr.Owner(s), 1)
	run.NetPhase(1)
	return core.Result{Answer: answers[fr.Owner(s)], Report: run.Finish()}
}
