// Package baseline implements the comparison algorithms of the paper's
// experimental study (Section 7):
//
//   - disReachn / disDistn / disRPQn ship every fragment to the coordinator
//     in parallel and evaluate the query with a centralized algorithm;
//   - disReachm is the message-passing distributed BFS following Pregel [21];
//   - disRPQd is a message-passing distributed evaluation of regular
//     reachability queries in the style of Suciu [30].
package baseline

import (
	"distreach/internal/automaton"
	"distreach/internal/bes"
	"distreach/internal/cluster"
	"distreach/internal/core"
	"distreach/internal/fragment"
	"distreach/internal/graph"
)

const querySize = 12

// shipAll accounts the naive strategy's first phase: every site ships its
// whole fragment to the coordinator, in parallel.
func shipAll(run *cluster.Run, fr *fragment.Fragmentation) {
	maxBytes := 0
	for i, f := range fr.Fragments() {
		run.Post(i, querySize) // the coordinator still asks each site
		b := f.EncodedSize()
		run.Reply(i, b)
		if b > maxBytes {
			maxBytes = b
		}
	}
	run.NetPhase(querySize)
	run.NetPhase(maxBytes)
}

// DisReachN evaluates qr(s, t) by shipping all fragments to the coordinator
// and running a centralized BFS on the restored graph (algorithm disReachn).
func DisReachN(cl *cluster.Cluster, fr *fragment.Fragmentation, s, t graph.NodeID) core.Result {
	run := cl.NewRun()
	shipAll(run, fr)
	var ans bool
	run.Sequential(func() {
		g := restore(fr)
		ans = g.Reachable(s, t)
	})
	return core.Result{Answer: ans, Report: run.Finish()}
}

// DisDistN evaluates qbr(s, t, l) by shipping all fragments and running a
// centralized BFS for the distance (algorithm disDistn).
func DisDistN(cl *cluster.Cluster, fr *fragment.Fragmentation, s, t graph.NodeID, l int) core.DistResult {
	run := cl.NewRun()
	shipAll(run, fr)
	var d int
	run.Sequential(func() {
		g := restore(fr)
		d = g.Dist(s, t)
	})
	dist := int64(d)
	if d < 0 {
		dist = bes.Inf
	}
	return core.DistResult{Answer: d >= 0 && d <= l, Distance: dist, Report: run.Finish()}
}

// DisRPQN evaluates qrr(s, t, R) by shipping all fragments and running a
// centralized product BFS (algorithm disRPQn).
func DisRPQN(cl *cluster.Cluster, fr *fragment.Fragmentation, s, t graph.NodeID, a *automaton.Automaton) core.Result {
	run := cl.NewRun()
	shipAll(run, fr)
	var ans bool
	run.Sequential(func() {
		g := restore(fr)
		ans = automaton.Eval(g, s, t, a)
	})
	return core.Result{Answer: ans, Report: run.Finish()}
}

// restore rebuilds the global graph from the shipped fragments, mirroring
// the coordinator-side reconstruction cost of the naive baselines. (The
// original graph object is intentionally not reused: the baseline must pay
// for reassembly.)
func restore(fr *fragment.Fragmentation) *graph.Graph {
	g := fr.Graph()
	b := graph.NewBuilder(g.NumNodes())
	for _, f := range fr.Fragments() {
		_ = f
	}
	for v := graph.NodeID(0); int(v) < g.NumNodes(); v++ {
		b.AddNode(g.Label(v))
	}
	for _, f := range fr.Fragments() {
		for l := int32(0); int(l) < f.NumTotal(); l++ {
			if f.IsVirtual(l) {
				continue
			}
			for _, w := range f.Out(l) {
				b.AddEdge(f.Global(l), f.Global(w))
			}
		}
	}
	return b.MustBuild()
}
