package baseline

import (
	"testing"

	"distreach/internal/automaton"
	"distreach/internal/cluster"
	"distreach/internal/core"
	"distreach/internal/fragment"
	"distreach/internal/gen"
	"distreach/internal/graph"
	"distreach/internal/rx"
)

func randomCase(rng *gen.RNG, labels []string) (*graph.Graph, *fragment.Fragmentation, graph.NodeID, graph.NodeID) {
	n := 2 + rng.Intn(40)
	m := rng.Intn(4 * n)
	g := gen.Uniform(gen.Config{Nodes: n, Edges: m, Labels: labels, Seed: rng.Uint64()})
	k := 1 + rng.Intn(5)
	fr, err := fragment.Random(g, k, rng.Uint64())
	if err != nil {
		panic(err)
	}
	s := graph.NodeID(rng.Intn(n))
	t := graph.NodeID(rng.Intn(n))
	return g, fr, s, t
}

func TestDisReachNMatchesOracle(t *testing.T) {
	rng := gen.NewRNG(11)
	for trial := 0; trial < 200; trial++ {
		g, fr, s, tt := randomCase(rng, nil)
		cl := cluster.New(fr.Card(), cluster.NetModel{})
		if got, want := DisReachN(cl, fr, s, tt).Answer, g.Reachable(s, tt); got != want {
			t.Fatalf("trial %d: got %v want %v", trial, got, want)
		}
	}
}

func TestDisReachMMatchesOracle(t *testing.T) {
	rng := gen.NewRNG(12)
	for trial := 0; trial < 200; trial++ {
		g, fr, s, tt := randomCase(rng, nil)
		cl := cluster.New(fr.Card(), cluster.NetModel{})
		if got, want := DisReachM(cl, fr, s, tt).Answer, g.Reachable(s, tt); got != want {
			t.Fatalf("trial %d: got %v want %v (s=%d t=%d %v %v)", trial, got, want, s, tt, g, fr)
		}
	}
}

func TestDisDistNMatchesOracle(t *testing.T) {
	rng := gen.NewRNG(13)
	for trial := 0; trial < 200; trial++ {
		g, fr, s, tt := randomCase(rng, nil)
		l := rng.Intn(10)
		cl := cluster.New(fr.Card(), cluster.NetModel{})
		res := DisDistN(cl, fr, s, tt, l)
		d := g.Dist(s, tt)
		if want := d >= 0 && d <= l; res.Answer != want {
			t.Fatalf("trial %d: got %v want %v (dist=%d l=%d)", trial, res.Answer, want, d, l)
		}
	}
}

var testLabels = []string{"A", "B", "C"}

func TestDisRPQNAndDMatchOracle(t *testing.T) {
	rng := gen.NewRNG(14)
	for trial := 0; trial < 200; trial++ {
		g, fr, s, tt := randomCase(rng, testLabels)
		a := automaton.Random(rng, 2+rng.Intn(6), 4+rng.Intn(10), testLabels)
		cl := cluster.New(fr.Card(), cluster.NetModel{})
		want := automaton.Eval(g, s, tt, a)
		if got := DisRPQN(cl, fr, s, tt, a).Answer; got != want {
			t.Fatalf("trial %d: disRPQn got %v want %v", trial, got, want)
		}
		if got := DisRPQD(cl, fr, s, tt, a).Answer; got != want {
			t.Fatalf("trial %d: disRPQd got %v want %v (s=%d t=%d %v %v)", trial, got, want, s, tt, g, fr)
		}
	}
}

// TestBaselinesAgreeWithCore cross-checks every algorithm pair on the same
// inputs, the property the paper's Table 2 and Fig. 11 rely on: all
// algorithms compute the same answers, only their costs differ.
func TestBaselinesAgreeWithCore(t *testing.T) {
	rng := gen.NewRNG(15)
	a := automaton.FromRegex(rx.MustParse("A (B|C)* A?"))
	for trial := 0; trial < 150; trial++ {
		_, fr, s, tt := randomCase(rng, testLabels)
		cl := cluster.New(fr.Card(), cluster.NetModel{})
		r1 := core.DisReach(cl, fr, s, tt, nil).Answer
		if r2 := DisReachN(cl, fr, s, tt).Answer; r1 != r2 {
			t.Fatalf("trial %d: disReach=%v disReachn=%v", trial, r1, r2)
		}
		if r3 := DisReachM(cl, fr, s, tt).Answer; r1 != r3 {
			t.Fatalf("trial %d: disReach=%v disReachm=%v", trial, r1, r3)
		}
		q1 := core.DisRPQ(cl, fr, s, tt, a, nil).Answer
		if q2 := DisRPQD(cl, fr, s, tt, a).Answer; q1 != q2 {
			t.Fatalf("trial %d: disRPQ=%v disRPQd=%v", trial, q1, q2)
		}
	}
}

// TestDisReachMVisitsManySites demonstrates the contrast the paper reports:
// the message-passing baseline visits sites many times while disReach
// visits each exactly once.
func TestDisReachMVisitsManySites(t *testing.T) {
	g := gen.Uniform(gen.Config{Nodes: 300, Edges: 1500, Seed: 9})
	fr, err := fragment.Random(g, 4, 9)
	if err != nil {
		t.Fatal(err)
	}
	cl := cluster.New(4, cluster.NetModel{})
	// Pick a positive query so the BFS actually propagates.
	var s, tt graph.NodeID = 0, 0
	found := false
	for v := graph.NodeID(1); int(v) < g.NumNodes() && !found; v++ {
		if g.Reachable(0, v) && g.Dist(0, v) >= 3 {
			tt, found = v, true
		}
	}
	if !found {
		t.Skip("no deep positive query in generated graph")
	}
	mRep := DisReachM(cl, fr, s, tt).Report
	pRep := core.DisReach(cl, fr, s, tt, nil).Report
	if pRep.MaxVisits != 1 {
		t.Fatalf("disReach max visits = %d, want 1", pRep.MaxVisits)
	}
	if mRep.TotalVisits <= pRep.TotalVisits {
		t.Fatalf("disReachm total visits = %d, expected more than disReach's %d",
			mRep.TotalVisits, pRep.TotalVisits)
	}
}
