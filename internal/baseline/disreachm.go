package baseline

import (
	"distreach/internal/cluster"
	"distreach/internal/core"
	"distreach/internal/fragment"
	"distreach/internal/graph"
	"distreach/internal/pregel"
)

// DisReachM evaluates qr(s, t) with the message-passing distributed BFS the
// paper describes as disReachm (Section 7), following Pregel [21]:
//
//   - every node carries a status in {inactive, active}, initially inactive;
//   - the source s becomes active and sends "T" to its inactive children,
//     which become active and propagate the message onward;
//   - cross-fragment messages travel through the master and count as visits
//     to the destination site;
//   - the algorithm stops when t becomes active (answer true) or when no
//     message is in flight (answer false).
//
// In contrast to disReach, the number of visits per site is unbounded and
// propagation serializes across supersteps.
func DisReachM(cl *cluster.Cluster, fr *fragment.Fragmentation, s, t graph.NodeID) core.Result {
	run := cl.NewRun()
	if s == t {
		return core.Result{Answer: true, Report: run.Finish()}
	}
	// The master posts the query to every worker first.
	for i := 0; i < fr.Card(); i++ {
		run.Post(i, querySize)
	}
	run.NetPhase(querySize)

	type msg struct{}
	res := pregel.Run[bool, msg](run, fr, pregel.Config[bool, msg]{
		InitialActive: []graph.NodeID{s},
		DeliverOnce:   true,
		Compute: func(ctx *pregel.Context[msg], v graph.NodeID, active *bool, msgs []msg) {
			defer ctx.VoteToHalt()
			if *active {
				return // no active node becomes inactive or re-propagates
			}
			if v != s && len(msgs) == 0 {
				return
			}
			*active = true
			if v == t {
				ctx.Signal()
				return
			}
			ctx.SendToNeighbors(msg{})
		},
	})
	return core.Result{Answer: res.Values[t], Report: run.Finish()}
}
