package gen

import (
	"distreach/internal/graph"

	"testing"
)

func TestRNGDeterministic(t *testing.T) {
	a, b := NewRNG(7), NewRNG(7)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
	c := NewRNG(8)
	same := true
	a2 := NewRNG(7)
	for i := 0; i < 10; i++ {
		if a2.Uint64() != c.Uint64() {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical streams")
	}
}

func TestIntnRange(t *testing.T) {
	rng := NewRNG(1)
	for i := 0; i < 1000; i++ {
		if v := rng.Intn(7); v < 0 || v >= 7 {
			t.Fatalf("Intn out of range: %d", v)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) should panic")
		}
	}()
	rng.Intn(0)
}

func TestPermIsPermutation(t *testing.T) {
	rng := NewRNG(2)
	p := rng.Perm(50)
	seen := make([]bool, 50)
	for _, v := range p {
		if seen[v] {
			t.Fatal("duplicate in permutation")
		}
		seen[v] = true
	}
}

func TestZipfSkew(t *testing.T) {
	rng := NewRNG(3)
	z := NewZipf(rng, 100, 1.2)
	counts := make([]int, 100)
	for i := 0; i < 20000; i++ {
		counts[z.Next()]++
	}
	if counts[0] <= counts[50] {
		t.Fatalf("Zipf not skewed: head=%d mid=%d", counts[0], counts[50])
	}
	// Uniform case: head and tail roughly equal.
	u := NewZipf(rng, 10, 0)
	ucounts := make([]int, 10)
	for i := 0; i < 20000; i++ {
		ucounts[u.Next()]++
	}
	if ucounts[0] > 3*ucounts[9] {
		t.Fatalf("uniform Zipf skewed: %v", ucounts)
	}
}

func TestUniformGraphShape(t *testing.T) {
	g := Uniform(Config{Nodes: 100, Edges: 300, Seed: 4})
	if g.NumNodes() != 100 {
		t.Fatalf("|V| = %d", g.NumNodes())
	}
	if g.NumEdges() == 0 || g.NumEdges() > 300 {
		t.Fatalf("|E| = %d", g.NumEdges())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestPowerLawHasHubs(t *testing.T) {
	g := PowerLaw(Config{Nodes: 2000, Edges: 10000, Seed: 5})
	maxIn := 0
	for v := 0; v < g.NumNodes(); v++ {
		if d := g.InDegree(graph.NodeID(v)); d > maxIn {
			maxIn = d
		}
	}
	avg := g.NumEdges() / g.NumNodes()
	if maxIn < 5*avg {
		t.Fatalf("no hub structure: max in-degree %d vs average %d", maxIn, avg)
	}
}

func TestGeneratorsDeterministic(t *testing.T) {
	a := PowerLaw(Config{Nodes: 200, Edges: 800, Labels: LabelAlphabet(5), LabelSkew: 1, Seed: 6})
	b := PowerLaw(Config{Nodes: 200, Edges: 800, Labels: LabelAlphabet(5), LabelSkew: 1, Seed: 6})
	if a.NumEdges() != b.NumEdges() {
		t.Fatal("same seed, different edge count")
	}
	for v := 0; v < a.NumNodes(); v++ {
		if a.Label(graph.NodeID(v)) != b.Label(graph.NodeID(v)) {
			t.Fatal("same seed, different labels")
		}
	}
}

func TestLabeledGeneration(t *testing.T) {
	labels := LabelAlphabet(3)
	g := Uniform(Config{Nodes: 50, Edges: 100, Labels: labels, LabelSkew: 0.5, Seed: 7})
	for v := 0; v < g.NumNodes(); v++ {
		l := g.Label(graph.NodeID(v))
		if l != "L0" && l != "L1" && l != "L2" {
			t.Fatalf("unexpected label %q", l)
		}
	}
}

func TestChainAndCycle(t *testing.T) {
	c := Chain([]string{"A", "B"}, 5)
	if c.NumNodes() != 5 || c.NumEdges() != 4 {
		t.Fatalf("chain shape: %v", c)
	}
	if c.Label(0) != "A" || c.Label(1) != "B" || c.Label(2) != "A" {
		t.Fatal("chain labels not cyclic")
	}
	cy := Cycle(6, nil, 1)
	if cy.NumEdges() != 6 {
		t.Fatalf("cycle edges: %d", cy.NumEdges())
	}
	if !cy.Reachable(3, 3) || !cy.Reachable(0, 5) {
		t.Fatal("cycle reachability wrong")
	}
}

func TestLayeredIsDAGWithBoundedDepth(t *testing.T) {
	g := Layered(5, 8, 0.5, LabelAlphabet(2), 8)
	if g.NumNodes() != 40 {
		t.Fatalf("|V| = %d", g.NumNodes())
	}
	// No node in a later layer reaches an earlier layer.
	if g.Reachable(39, 0) {
		t.Fatal("layered graph has a backward path")
	}
}

func TestDensificationGrowsSuperlinear(t *testing.T) {
	small := Densification(Config{Nodes: 100, Seed: 9}, 1.2)
	large := Densification(Config{Nodes: 1000, Seed: 9}, 1.2)
	rs := float64(small.NumEdges()) / float64(small.NumNodes())
	rl := float64(large.NumEdges()) / float64(large.NumNodes())
	if rl <= rs {
		t.Fatalf("densification law violated: %f -> %f edges/node", rs, rl)
	}
}

func TestPowHelpers(t *testing.T) {
	cases := []struct{ x, y, want, tol float64 }{
		{2, 2, 4, 0.01},
		{10, 1, 10, 0.01},
		{100, 0.5, 10, 0.1},
		{1000, 1.2, 3981, 40},
	}
	for _, c := range cases {
		got := pow(c.x, c.y)
		if got < c.want-c.tol || got > c.want+c.tol {
			t.Errorf("pow(%v,%v) = %v, want %v±%v", c.x, c.y, got, c.want, c.tol)
		}
	}
}

func TestCommunitiesStructure(t *testing.T) {
	g := Communities(CommunitiesConfig{
		Communities: 4, Size: 50, InDegree: 5, OutDegree: 1,
		Labels: LabelAlphabet(3), LabelSkew: 1, Seed: 30,
	})
	if g.NumNodes() != 200 {
		t.Fatalf("|V| = %d", g.NumNodes())
	}
	// Count intra- vs cross-block edges: intra must dominate.
	intra, cross := 0, 0
	g.Edges(func(u, v graph.NodeID) bool {
		if int(u)/50 == int(v)/50 {
			intra++
		} else {
			cross++
		}
		return true
	})
	if intra <= 3*cross {
		t.Fatalf("no community structure: intra=%d cross=%d", intra, cross)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}
