// Package gen produces the deterministic synthetic graphs used to stand in
// for the paper's real-life datasets (LiveJournal, WikiTalk, Citation, ...)
// and for the scalability experiments driven by the densification law of
// Leskovec et al. All generators are fully determined by an explicit seed so
// that experiments and tests are reproducible.
package gen

// RNG is a small, fast deterministic pseudo-random generator (splitmix64).
// We avoid math/rand so that generated graphs are stable across Go releases:
// the experiments in EXPERIMENTS.md reference specific generated instances.
type RNG struct{ state uint64 }

// NewRNG returns a generator seeded with seed.
func NewRNG(seed uint64) *RNG { return &RNG{state: seed} }

// Uint64 returns the next pseudo-random 64-bit value.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a uniform value in [0, n). n must be positive.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("gen: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Perm returns a pseudo-random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Zipf samples from a Zipf-like distribution over [0, n) with skew s >= 0.
// s == 0 degenerates to uniform. The implementation uses inverse-CDF over a
// precomputed table; build one Zipf per (n, s) pair and reuse it.
type Zipf struct {
	cdf []float64
	rng *RNG
}

// NewZipf builds a Zipf sampler over [0, n) with exponent s, drawing
// randomness from rng.
func NewZipf(rng *RNG, n int, s float64) *Zipf {
	cdf := make([]float64, n)
	sum := 0.0
	for i := 0; i < n; i++ {
		w := 1.0
		if s > 0 {
			w = 1.0 / pow(float64(i+1), s)
		}
		sum += w
		cdf[i] = sum
	}
	for i := range cdf {
		cdf[i] /= sum
	}
	return &Zipf{cdf: cdf, rng: rng}
}

// Next samples a value in [0, n).
func (z *Zipf) Next() int {
	u := z.rng.Float64()
	lo, hi := 0, len(z.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// pow computes x**y for positive x without importing math (exp/log via
// the identity would need math anyway, so do iterative multiplication for
// the common small-exponent case and a series otherwise). The precision
// demands here are modest: pow only shapes a sampling distribution.
func pow(x, y float64) float64 {
	// x^y = exp(y * ln x); implement ln and exp with enough precision for
	// distribution shaping. Range of interest: x in [1, 1e7], y in [0, 3].
	return exp(y * ln(x))
}

func ln(x float64) float64 {
	// Normalize x = m * 2^k with m in [1, 2).
	k := 0
	for x >= 2 {
		x /= 2
		k++
	}
	for x < 1 {
		x *= 2
		k--
	}
	// atanh series: ln(m) = 2*atanh((m-1)/(m+1)).
	t := (x - 1) / (x + 1)
	t2 := t * t
	term := t
	sum := 0.0
	for i := 1; i < 40; i += 2 {
		sum += term / float64(i)
		term *= t2
	}
	const ln2 = 0.6931471805599453
	return 2*sum + float64(k)*ln2
}

func exp(x float64) float64 {
	neg := false
	if x < 0 {
		neg = true
		x = -x
	}
	// e^x = e^i * e^f.
	i := int(x)
	f := x - float64(i)
	const e = 2.718281828459045
	ei := 1.0
	for j := 0; j < i; j++ {
		ei *= e
	}
	// Taylor series for e^f, f in [0,1).
	term, sum := 1.0, 1.0
	for j := 1; j < 20; j++ {
		term *= f / float64(j)
		sum += term
	}
	r := ei * sum
	if neg {
		return 1 / r
	}
	return r
}
