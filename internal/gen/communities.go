package gen

import "distreach/internal/graph"

// CommunitiesConfig controls the stochastic-block-model style generator.
type CommunitiesConfig struct {
	Communities int      // number of blocks
	Size        int      // nodes per block
	InDegree    int      // average intra-block out-degree per node
	OutDegree   int      // average cross-block out-degree per node
	Labels      []string // label alphabet (nil = unlabeled)
	LabelSkew   float64
	Seed        uint64
}

// Communities generates a graph with planted community structure: dense
// blocks with sparse cross-block edges. Locality-aware partitioners
// (fragment.Greedy, fragment.Contiguous with block-ordered IDs) recover the
// blocks and so produce far smaller |Vf| than random partitioning — the
// setup behind the partitioner ablation in DESIGN.md. Node IDs are block
// ordered: block b holds IDs [b·Size, (b+1)·Size).
func Communities(cfg CommunitiesConfig) *graph.Graph {
	rng := NewRNG(cfg.Seed)
	n := cfg.Communities * cfg.Size
	b := graph.NewBuilder(n)
	var z *Zipf
	if len(cfg.Labels) > 0 {
		z = NewZipf(rng, len(cfg.Labels), cfg.LabelSkew)
	}
	for i := 0; i < n; i++ {
		if z != nil {
			b.AddNode(cfg.Labels[z.Next()])
		} else {
			b.AddNode("")
		}
	}
	for c := 0; c < cfg.Communities; c++ {
		base := c * cfg.Size
		for i := 0; i < cfg.Size; i++ {
			u := graph.NodeID(base + i)
			for d := 0; d < cfg.InDegree; d++ {
				b.AddEdge(u, graph.NodeID(base+rng.Intn(cfg.Size)))
			}
			for d := 0; d < cfg.OutDegree; d++ {
				other := rng.Intn(n)
				b.AddEdge(u, graph.NodeID(other))
			}
		}
	}
	return b.MustBuild()
}
