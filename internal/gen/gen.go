package gen

import (
	"fmt"

	"distreach/internal/graph"
)

// LabelAlphabet returns labels "L0".."L<n-1>". The paper's labeled datasets
// carry attribute alphabets of between 12 and ~61k labels; we keep the shape
// (a finite alphabet with Zipf-skewed frequencies) and parameterize the size.
func LabelAlphabet(n int) []string {
	ls := make([]string, n)
	for i := range ls {
		ls[i] = fmt.Sprintf("L%d", i)
	}
	return ls
}

// Config controls synthetic graph generation.
type Config struct {
	Nodes     int      // number of nodes, > 0
	Edges     int      // target number of edges
	Labels    []string // label alphabet; nil means the single label ""
	LabelSkew float64  // Zipf exponent for label assignment (0 = uniform)
	Seed      uint64   // RNG seed; same config+seed => identical graph
}

// Uniform generates a uniform random directed graph (Erdős–Rényi G(n,m)
// style): Edges edges sampled uniformly with replacement, duplicates
// coalesced by the builder, so the final edge count can be slightly below
// the target on dense configurations.
func Uniform(cfg Config) *graph.Graph {
	rng := NewRNG(cfg.Seed)
	b := graph.NewBuilder(cfg.Nodes)
	assignLabels(b, cfg, rng)
	for i := 0; i < cfg.Edges; i++ {
		u := graph.NodeID(rng.Intn(cfg.Nodes))
		v := graph.NodeID(rng.Intn(cfg.Nodes))
		b.AddEdge(u, v)
	}
	return b.MustBuild()
}

// PowerLaw generates a graph whose in-degree distribution is heavy-tailed,
// in the spirit of preferential attachment: edge targets are sampled with
// probability proportional to (current in-degree + 1), sources uniformly.
// This reproduces the hub structure of social and web graphs, which is the
// property that drives fragment-cut sizes (|Vf|) under random partitioning.
func PowerLaw(cfg Config) *graph.Graph {
	rng := NewRNG(cfg.Seed)
	b := graph.NewBuilder(cfg.Nodes)
	assignLabels(b, cfg, rng)
	// Repeated-endpoint trick: keep a pool of previously used targets; with
	// probability p pick from the pool (preferential), otherwise uniform.
	pool := make([]graph.NodeID, 0, cfg.Edges)
	const pref = 0.7
	for i := 0; i < cfg.Edges; i++ {
		u := graph.NodeID(rng.Intn(cfg.Nodes))
		var v graph.NodeID
		if len(pool) > 0 && rng.Float64() < pref {
			v = pool[rng.Intn(len(pool))]
		} else {
			v = graph.NodeID(rng.Intn(cfg.Nodes))
		}
		b.AddEdge(u, v)
		pool = append(pool, v)
	}
	return b.MustBuild()
}

// Densification generates a graph following the densification law
// |E| ~ |V|^a with a in (1, 2), per Leskovec et al. [20], which is the
// growth model the paper uses for its synthetic scalability experiments.
// Given Nodes and exponent a, the edge count is derived; cfg.Edges is
// ignored.
func Densification(cfg Config, exponent float64) *graph.Graph {
	e := int(pow(float64(cfg.Nodes), exponent))
	c := cfg
	c.Edges = e
	return PowerLaw(c)
}

// Layered generates a DAG of `layers` layers with `width` nodes per layer
// and forward edges between consecutive layers with probability p. Useful
// for bounded-reachability tests where distances are controlled.
func Layered(layers, width int, p float64, labels []string, seed uint64) *graph.Graph {
	rng := NewRNG(seed)
	b := graph.NewBuilder(layers * width)
	n := layers * width
	for i := 0; i < n; i++ {
		if len(labels) > 0 {
			b.AddNode(labels[rng.Intn(len(labels))])
		} else {
			b.AddNode("")
		}
	}
	for l := 0; l < layers-1; l++ {
		for i := 0; i < width; i++ {
			for j := 0; j < width; j++ {
				if rng.Float64() < p {
					b.AddEdge(graph.NodeID(l*width+i), graph.NodeID((l+1)*width+j))
				}
			}
		}
	}
	return b.MustBuild()
}

// Cycle generates a single directed cycle of n nodes; a minimal recursive
// structure that exercises the cyclic Boolean equation systems.
func Cycle(n int, labels []string, seed uint64) *graph.Graph {
	rng := NewRNG(seed)
	b := graph.NewBuilder(n)
	for i := 0; i < n; i++ {
		if len(labels) > 0 {
			b.AddNode(labels[rng.Intn(len(labels))])
		} else {
			b.AddNode("")
		}
	}
	for i := 0; i < n; i++ {
		b.AddEdge(graph.NodeID(i), graph.NodeID((i+1)%n))
	}
	return b.MustBuild()
}

// Chain generates a simple path of n nodes labeled from the given sequence
// cyclically; handy for regular reachability unit tests where the path label
// is known exactly.
func Chain(labelSeq []string, n int) *graph.Graph {
	b := graph.NewBuilder(n)
	for i := 0; i < n; i++ {
		l := ""
		if len(labelSeq) > 0 {
			l = labelSeq[i%len(labelSeq)]
		}
		b.AddNode(l)
	}
	for i := 0; i+1 < n; i++ {
		b.AddEdge(graph.NodeID(i), graph.NodeID(i+1))
	}
	return b.MustBuild()
}

func assignLabels(b *graph.Builder, cfg Config, rng *RNG) {
	if len(cfg.Labels) == 0 {
		b.AddNodes(cfg.Nodes, "")
		return
	}
	z := NewZipf(rng, len(cfg.Labels), cfg.LabelSkew)
	for i := 0; i < cfg.Nodes; i++ {
		b.AddNode(cfg.Labels[z.Next()])
	}
}
