// Package obs is the zero-dependency observability layer: a small
// counter/gauge/histogram registry rendered in Prometheus text exposition
// format (metrics.go), distributed query traces with a wire codec for
// piggybacking site spans on reply frames (trace.go), and a live auditor
// for the paper's performance guarantees (audit.go).
//
// Everything here is hand-rolled on purpose: the serving tier must not
// pull a metrics or tracing SDK into the module, and the paper's bounds
// are simple enough to check with integer arithmetic. The exposition
// writer sticks to the Prometheus text format version 0.0.4 so any
// standard scraper ingests it; ValidateExposition is the matching parser
// CI uses to prove the output stays well-formed.
package obs

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n; negative deltas are ignored (counters only go up).
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Value reports the current count. /stats handlers read this so the JSON
// view and the Prometheus view come from one source of truth.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a metric that can go up and down.
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the gauge's value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adjusts the gauge by d.
func (g *Gauge) Add(d float64) {
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+d)) {
			return
		}
	}
}

// Value reports the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram is a fixed-bucket distribution. Bounds are upper bucket edges
// in ascending order; an implicit +Inf bucket catches the rest.
type Histogram struct {
	bounds []float64
	counts []atomic.Int64 // len(bounds)+1; per-bucket, cumulated at render
	sum    atomic.Uint64  // float64 bits, CAS-accumulated
	n      atomic.Int64
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.n.Add(1)
	for {
		old := h.sum.Load()
		if h.sum.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// Count reports how many samples were observed.
func (h *Histogram) Count() int64 { return h.n.Load() }

// Sum reports the total of all observed samples.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// DurationBuckets is the default latency histogram layout in seconds:
// 100µs to ~100s, roughly 3 buckets per decade.
var DurationBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
	0.1, 0.25, 0.5, 1, 2.5, 5, 10, 25, 50, 100,
}

// ByteBuckets is the default size histogram layout in bytes: 64B to 16MB.
var ByteBuckets = []float64{
	64, 256, 1024, 4096, 16384, 65536, 262144, 1048576, 4194304, 16777216,
}

// child is one labeled series inside a family.
type child struct {
	label string // label value; "" for the unlabeled singleton
	c     *Counter
	g     *Gauge
	fn    func() float64 // gauge-func series, sampled at render time
	h     *Histogram
}

// family is one metric name: its metadata plus every labeled series.
type family struct {
	name, help, typ string // typ: "counter" | "gauge" | "histogram"
	labelKey        string // "" for unlabeled families
	buckets         []float64

	mu       sync.Mutex
	children map[string]*child
	order    []string
}

func (f *family) get(label string) *child {
	f.mu.Lock()
	defer f.mu.Unlock()
	ch, ok := f.children[label]
	if !ok {
		ch = &child{label: label}
		switch f.typ {
		case "counter":
			ch.c = &Counter{}
		case "gauge":
			ch.g = &Gauge{}
		case "histogram":
			ch.h = &Histogram{bounds: f.buckets, counts: make([]atomic.Int64, len(f.buckets)+1)}
		}
		f.children[label] = ch
		f.order = append(f.order, label)
	}
	return ch
}

// Registry holds metric families and renders them as Prometheus text.
// All methods are safe for concurrent use; registering the same name
// twice returns the existing family (so wiring code can be idempotent)
// and panics only when the second registration disagrees on type.
type Registry struct {
	mu     sync.Mutex
	fams   []*family
	byName map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*family)}
}

func (r *Registry) family(name, help, typ, labelKey string, buckets []float64) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.byName[name]; ok {
		if f.typ != typ || f.labelKey != labelKey {
			panic(fmt.Sprintf("obs: metric %q re-registered as %s/%q (was %s/%q)", name, typ, labelKey, f.typ, f.labelKey))
		}
		return f
	}
	f := &family{name: name, help: help, typ: typ, labelKey: labelKey, buckets: buckets,
		children: make(map[string]*child)}
	r.fams = append(r.fams, f)
	r.byName[name] = f
	return f
}

// Counter registers (or finds) an unlabeled counter.
func (r *Registry) Counter(name, help string) *Counter {
	return r.family(name, help, "counter", "", nil).get("").c
}

// CounterVec registers a counter family keyed by one label.
func (r *Registry) CounterVec(name, help, label string) *CounterVec {
	return &CounterVec{f: r.family(name, help, "counter", label, nil)}
}

// CounterVec is a labeled counter family.
type CounterVec struct{ f *family }

// With returns the counter for one label value.
func (v *CounterVec) With(label string) *Counter { return v.f.get(label).c }

// Gauge registers (or finds) an unlabeled gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	return r.family(name, help, "gauge", "", nil).get("").g
}

// GaugeFunc registers a gauge whose value is sampled from fn at render
// time — the bridge from existing accessors (cache stats, sequencer LSN,
// balance stats) into the exposition without double bookkeeping.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	ch := r.family(name, help, "gauge", "", nil).get("")
	ch.fn = fn
}

// GaugeFuncVec registers one sampled series of a labeled gauge family.
func (r *Registry) GaugeFuncVec(name, help, label, value string, fn func() float64) {
	ch := r.family(name, help, "gauge", label, nil).get(value)
	ch.fn = fn
}

// Histogram registers (or finds) an unlabeled histogram. nil buckets
// default to DurationBuckets.
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	if buckets == nil {
		buckets = DurationBuckets
	}
	return r.family(name, help, "histogram", "", buckets).get("").h
}

// HistogramVec registers a histogram family keyed by one label.
func (r *Registry) HistogramVec(name, help, label string, buckets []float64) *HistogramVec {
	if buckets == nil {
		buckets = DurationBuckets
	}
	return &HistogramVec{f: r.family(name, help, "histogram", label, buckets)}
}

// HistogramVec is a labeled histogram family.
type HistogramVec struct{ f *family }

// With returns the histogram for one label value.
func (v *HistogramVec) With(label string) *Histogram { return v.f.get(label).h }

// fmtFloat renders a sample value the way Prometheus expects.
func fmtFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// escapeHelp escapes a HELP string per the text format.
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// escapeLabel escapes a label value per the text format.
func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, "\n", `\n`)
	return strings.ReplaceAll(s, `"`, `\"`)
}

// labels renders a label set: the family's key=value (if labeled) plus an
// optional trailing le pair for histogram buckets.
func labels(key, value, le string) string {
	var parts []string
	if key != "" {
		parts = append(parts, key+`="`+escapeLabel(value)+`"`)
	}
	if le != "" {
		parts = append(parts, `le="`+le+`"`)
	}
	if len(parts) == 0 {
		return ""
	}
	return "{" + strings.Join(parts, ",") + "}"
}

// WritePrometheus renders every family in text exposition format 0.0.4.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	fams := append([]*family(nil), r.fams...)
	r.mu.Unlock()
	var b strings.Builder
	for _, f := range fams {
		f.mu.Lock()
		order := append([]string(nil), f.order...)
		kids := make([]*child, len(order))
		for i, lv := range order {
			kids[i] = f.children[lv]
		}
		f.mu.Unlock()
		if len(kids) == 0 {
			continue
		}
		fmt.Fprintf(&b, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, f.typ)
		for _, ch := range kids {
			switch f.typ {
			case "counter":
				fmt.Fprintf(&b, "%s%s %d\n", f.name, labels(f.labelKey, ch.label, ""), ch.c.Value())
			case "gauge":
				v := ch.g.Value()
				if ch.fn != nil {
					v = ch.fn()
				}
				fmt.Fprintf(&b, "%s%s %s\n", f.name, labels(f.labelKey, ch.label, ""), fmtFloat(v))
			case "histogram":
				cum := int64(0)
				for i, bound := range ch.h.bounds {
					cum += ch.h.counts[i].Load()
					fmt.Fprintf(&b, "%s_bucket%s %d\n", f.name, labels(f.labelKey, ch.label, fmtFloat(bound)), cum)
				}
				// The +Inf bucket equals the total count by construction, even
				// while concurrent Observes land between these loads: read the
				// per-bucket tail first, then reuse the cumulative sum.
				cum += ch.h.counts[len(ch.h.bounds)].Load()
				fmt.Fprintf(&b, "%s_bucket%s %d\n", f.name, labels(f.labelKey, ch.label, "+Inf"), cum)
				fmt.Fprintf(&b, "%s_sum%s %s\n", f.name, labels(f.labelKey, ch.label, ""), fmtFloat(ch.h.Sum()))
				fmt.Fprintf(&b, "%s_count%s %d\n", f.name, labels(f.labelKey, ch.label, ""), cum)
			}
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// Handler serves the registry over HTTP with the exposition content type.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w)
	})
}
