package obs

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// Attr is one key/value annotation on a span.
type Attr struct {
	Key string `json:"k"`
	Val string `json:"v"`
}

// Span is one timed operation inside a trace. Site is the fragment index
// the span ran on, or -1 for coordinator-side spans.
type Span struct {
	ID     uint64        `json:"id"`
	Parent uint64        `json:"parent"` // 0 = root
	Name   string        `json:"name"`
	Site   int           `json:"site"`
	Start  time.Time     `json:"start"`
	Dur    time.Duration `json:"dur_ns"`
	Attrs  []Attr        `json:"attrs,omitempty"`
}

// Trace is one query's assembled span tree.
type Trace struct {
	ID    uint64        `json:"id"`
	Name  string        `json:"name"`
	Start time.Time     `json:"start"`
	Dur   time.Duration `json:"dur_ns"`
	Spans []Span        `json:"spans"`
}

// Builder assembles a trace on the coordinator. Span IDs are sequential
// per trace (root = 1); remote spans shipped back from sites are remapped
// into the same ID space by AttachRemote. Safe for the concurrent
// per-site goroutines a round fans out.
type Builder struct {
	mu    sync.Mutex
	tr    Trace
	next  uint64
	ended bool
}

// NewBuilder starts a trace with a root span named like the trace.
func NewBuilder(id uint64, name string) *Builder {
	now := time.Now()
	b := &Builder{next: 2}
	b.tr = Trace{ID: id, Name: name, Start: now, Spans: []Span{
		{ID: 1, Parent: 0, Name: name, Site: -1, Start: now},
	}}
	return b
}

// Root returns the root span's ID (always 1, named for readability at
// call sites).
func (b *Builder) Root() uint64 { return 1 }

// StartSpan opens a coordinator-side span under parent and returns its ID.
func (b *Builder) StartSpan(parent uint64, name string, attrs ...Attr) uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	id := b.next
	b.next++
	b.tr.Spans = append(b.tr.Spans, Span{
		ID: id, Parent: parent, Name: name, Site: -1, Start: time.Now(), Attrs: attrs,
	})
	return id
}

// End closes a span opened by StartSpan and appends any late attributes.
func (b *Builder) End(id uint64, attrs ...Attr) {
	b.mu.Lock()
	defer b.mu.Unlock()
	for i := range b.tr.Spans {
		if b.tr.Spans[i].ID == id {
			b.tr.Spans[i].Dur = time.Since(b.tr.Spans[i].Start)
			b.tr.Spans[i].Attrs = append(b.tr.Spans[i].Attrs, attrs...)
			return
		}
	}
}

// AddSpan records an already-timed coordinator-side span.
func (b *Builder) AddSpan(parent uint64, name string, start time.Time, dur time.Duration, attrs ...Attr) uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	id := b.next
	b.next++
	b.tr.Spans = append(b.tr.Spans, Span{
		ID: id, Parent: parent, Name: name, Site: -1, Start: start, Dur: dur, Attrs: attrs,
	})
	return id
}

// AttachRemote grafts a site's decoded spans under parent. anchor is the
// coordinator-clock instant the site started measuring from (we use the
// moment the request frame was posted), so remote offsets render on the
// coordinator's timeline without trusting the site's wall clock.
// Site-local parent indices are remapped into this trace's ID space; a
// parent index of -1 (or out of range) hangs the span off parent.
func (b *Builder) AttachRemote(parent uint64, site int, anchor time.Time, spans []WireSpan) {
	b.mu.Lock()
	defer b.mu.Unlock()
	ids := make([]uint64, len(spans))
	for i := range spans {
		ids[i] = b.next
		b.next++
	}
	for i, ws := range spans {
		pid := parent
		if ws.Parent >= 0 && int(ws.Parent) < i {
			pid = ids[ws.Parent]
		}
		attrs := make([]Attr, len(ws.Attrs))
		copy(attrs, ws.Attrs)
		b.tr.Spans = append(b.tr.Spans, Span{
			ID: ids[i], Parent: pid, Name: ws.Name, Site: site,
			Start: anchor.Add(time.Duration(ws.StartOffsetNs)),
			Dur:   time.Duration(ws.DurNs),
			Attrs: attrs,
		})
	}
}

// Finish closes the root span and returns the completed trace. Further
// calls return the same trace without re-closing it.
func (b *Builder) Finish() *Trace {
	b.mu.Lock()
	defer b.mu.Unlock()
	if !b.ended {
		b.ended = true
		b.tr.Spans[0].Dur = time.Since(b.tr.Start)
		b.tr.Dur = b.tr.Spans[0].Dur
	}
	tr := b.tr
	return &tr
}

// Wire-format caps. A reply frame carries at most maxWireSpans spans;
// recorders drop extras rather than bloat the answer, and decoders
// reject anything past the caps so a malicious peer can't balloon
// coordinator memory.
const (
	maxWireSpans    = 256
	maxSpanName     = 64
	maxSpanAttrs    = 16
	maxAttrKeyLen   = 64
	maxAttrValLen   = 256
	wireSpanMinSize = 2 + 1 + 8 + 8 + 1 // parent + nameLen + start + dur + nAttrs
)

// WireSpan is a site-recorded span in shipping form: times are offsets
// from the site's frame-receipt instant so no wall-clock crosses the
// wire, and Parent indexes an earlier span in the same batch (-1 = the
// coordinator's enclosing rpc span).
type WireSpan struct {
	Parent        int16
	Name          string
	StartOffsetNs uint64
	DurNs         uint64
	Attrs         []Attr
}

// AppendWireSpans encodes spans onto dst. Layout per span:
//
//	parent i16 | nameLen u8 | name | startOffsetNs u64 | durNs u64 |
//	nAttrs u8 | (keyLen u8 | key | valLen u16 | val)*
func AppendWireSpans(dst []byte, spans []WireSpan) []byte {
	if len(spans) > maxWireSpans {
		spans = spans[:maxWireSpans]
	}
	dst = binary.BigEndian.AppendUint16(dst, uint16(len(spans)))
	for _, s := range spans {
		dst = binary.BigEndian.AppendUint16(dst, uint16(s.Parent))
		name := s.Name
		if len(name) > maxSpanName {
			name = name[:maxSpanName]
		}
		dst = append(dst, byte(len(name)))
		dst = append(dst, name...)
		dst = binary.BigEndian.AppendUint64(dst, s.StartOffsetNs)
		dst = binary.BigEndian.AppendUint64(dst, s.DurNs)
		attrs := s.Attrs
		if len(attrs) > maxSpanAttrs {
			attrs = attrs[:maxSpanAttrs]
		}
		dst = append(dst, byte(len(attrs)))
		for _, a := range attrs {
			k, v := a.Key, a.Val
			if len(k) > maxAttrKeyLen {
				k = k[:maxAttrKeyLen]
			}
			if len(v) > maxAttrValLen {
				v = v[:maxAttrValLen]
			}
			dst = append(dst, byte(len(k)))
			dst = append(dst, k...)
			dst = binary.BigEndian.AppendUint16(dst, uint16(len(v)))
			dst = append(dst, v...)
		}
	}
	return dst
}

var errWireSpans = errors.New("obs: malformed wire spans")

// DecodeWireSpans decodes a span batch produced by AppendWireSpans and
// returns the remaining bytes after it.
func DecodeWireSpans(p []byte) ([]WireSpan, []byte, error) {
	if len(p) < 2 {
		return nil, nil, errWireSpans
	}
	n := int(binary.BigEndian.Uint16(p))
	p = p[2:]
	if n > maxWireSpans {
		return nil, nil, errWireSpans
	}
	spans := make([]WireSpan, 0, n)
	for i := 0; i < n; i++ {
		if len(p) < wireSpanMinSize {
			return nil, nil, errWireSpans
		}
		var s WireSpan
		s.Parent = int16(binary.BigEndian.Uint16(p))
		nameLen := int(p[2])
		p = p[3:]
		if nameLen > maxSpanName || len(p) < nameLen+17 {
			return nil, nil, errWireSpans
		}
		s.Name = string(p[:nameLen])
		p = p[nameLen:]
		s.StartOffsetNs = binary.BigEndian.Uint64(p)
		s.DurNs = binary.BigEndian.Uint64(p[8:])
		nAttrs := int(p[16])
		p = p[17:]
		if nAttrs > maxSpanAttrs {
			return nil, nil, errWireSpans
		}
		for j := 0; j < nAttrs; j++ {
			if len(p) < 1 {
				return nil, nil, errWireSpans
			}
			kLen := int(p[0])
			p = p[1:]
			if kLen > maxAttrKeyLen || len(p) < kLen+2 {
				return nil, nil, errWireSpans
			}
			k := string(p[:kLen])
			p = p[kLen:]
			vLen := int(binary.BigEndian.Uint16(p))
			p = p[2:]
			if vLen > maxAttrValLen || len(p) < vLen {
				return nil, nil, errWireSpans
			}
			s.Attrs = append(s.Attrs, Attr{Key: k, Val: string(p[:vLen])})
			p = p[vLen:]
		}
		spans = append(spans, s)
	}
	return spans, p, nil
}

// Recorder captures spans on a site worker while it processes one traced
// frame. It is used by a single goroutine (the worker owning the job) —
// except Span, which the emit path may call from the same goroutine —
// so it needs no locking; t0 is the frame-receipt instant all offsets
// are relative to.
type Recorder struct {
	t0    time.Time
	spans []WireSpan
}

// NewRecorder starts recording with offsets anchored at t0.
func NewRecorder(t0 time.Time) *Recorder {
	return &Recorder{t0: t0}
}

// Span records one completed span. parent is the index of an earlier
// recorded span, or -1 to hang it off the coordinator's rpc span.
// Returns this span's index for use as a later parent.
func (r *Recorder) Span(parent int, name string, start, end time.Time, attrs ...Attr) int {
	if len(r.spans) >= maxWireSpans {
		return -1
	}
	so := start.Sub(r.t0)
	if so < 0 {
		so = 0
	}
	d := end.Sub(start)
	if d < 0 {
		d = 0
	}
	r.spans = append(r.spans, WireSpan{
		Parent:        int16(parent),
		Name:          name,
		StartOffsetNs: uint64(so),
		DurNs:         uint64(d),
		Attrs:         attrs,
	})
	return len(r.spans) - 1
}

// Wire encodes everything recorded so far.
func (r *Recorder) Wire() []byte {
	return AppendWireSpans(nil, r.spans)
}

// TraceStore is a fixed-capacity ring of recent traces with O(1) lookup
// by ID, plus an optional slow-query callback.
type TraceStore struct {
	mu     sync.Mutex
	ring   []*Trace
	next   int
	byID   map[uint64]*Trace
	slow   time.Duration
	onSlow func(*Trace)
}

// NewTraceStore returns a store retaining the last capacity traces.
func NewTraceStore(capacity int) *TraceStore {
	if capacity <= 0 {
		capacity = 256
	}
	return &TraceStore{ring: make([]*Trace, capacity), byID: make(map[uint64]*Trace)}
}

// SetSlow arms the slow-query log: any stored trace with Dur >= d is
// passed to fn (synchronously, so fn should be quick — the gateway logs).
func (s *TraceStore) SetSlow(d time.Duration, fn func(*Trace)) {
	s.mu.Lock()
	s.slow, s.onSlow = d, fn
	s.mu.Unlock()
}

// Put stores a finished trace, evicting the oldest when full.
func (s *TraceStore) Put(tr *Trace) {
	s.mu.Lock()
	if old := s.ring[s.next]; old != nil {
		delete(s.byID, old.ID)
	}
	s.ring[s.next] = tr
	s.byID[tr.ID] = tr
	s.next = (s.next + 1) % len(s.ring)
	slow, fn := s.slow, s.onSlow
	s.mu.Unlock()
	if fn != nil && slow > 0 && tr.Dur >= slow {
		fn(tr)
	}
}

// Get returns the trace with the given ID, or nil.
func (s *TraceStore) Get(id uint64) *Trace {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.byID[id]
}

// Recent returns up to n most-recent traces, newest first.
func (s *TraceStore) Recent(n int) []*Trace {
	s.mu.Lock()
	defer s.mu.Unlock()
	if n <= 0 || n > len(s.ring) {
		n = len(s.ring)
	}
	out := make([]*Trace, 0, n)
	i := s.next - 1
	for len(out) < n {
		if i < 0 {
			i += len(s.ring)
		}
		if s.ring[i] == nil {
			break
		}
		out = append(out, s.ring[i])
		i--
		if i == s.next-1 {
			break
		}
	}
	return out
}

// treeNode is the nested JSON view of a span.
type treeNode struct {
	Name     string     `json:"name"`
	Site     int        `json:"site"`
	StartUs  int64      `json:"start_us"` // offset from trace start
	DurUs    int64      `json:"dur_us"`
	Attrs    []Attr     `json:"attrs,omitempty"`
	Children []treeNode `json:"children,omitempty"`
}

func (t *Trace) buildTree() []treeNode {
	kids := make(map[uint64][]int)
	byID := make(map[uint64]int)
	for i := range t.Spans {
		byID[t.Spans[i].ID] = i
		kids[t.Spans[i].Parent] = append(kids[t.Spans[i].Parent], i)
	}
	var build func(id uint64) []treeNode
	build = func(id uint64) []treeNode {
		idx := kids[id]
		sort.Slice(idx, func(a, b int) bool {
			return t.Spans[idx[a]].Start.Before(t.Spans[idx[b]].Start)
		})
		var out []treeNode
		for _, i := range idx {
			sp := &t.Spans[i]
			out = append(out, treeNode{
				Name:     sp.Name,
				Site:     sp.Site,
				StartUs:  sp.Start.Sub(t.Start).Microseconds(),
				DurUs:    sp.Dur.Microseconds(),
				Attrs:    sp.Attrs,
				Children: build(sp.ID),
			})
		}
		return out
	}
	return build(0)
}

// Tree marshals the trace as a nested JSON document for /trace/<id>.
func (t *Trace) Tree() ([]byte, error) {
	return json.MarshalIndent(struct {
		ID    uint64     `json:"trace_id"`
		Name  string     `json:"name"`
		Start time.Time  `json:"start"`
		DurUs int64      `json:"dur_us"`
		Tree  []treeNode `json:"tree"`
	}{t.ID, t.Name, t.Start, t.Dur.Microseconds(), t.buildTree()}, "", "  ")
}

// Format renders the trace as an indented text tree for the slow-query log.
func (t *Trace) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "trace %x %s dur=%s\n", t.ID, t.Name, t.Dur)
	var walk func(nodes []treeNode, depth int)
	walk = func(nodes []treeNode, depth int) {
		for _, n := range nodes {
			fmt.Fprintf(&b, "%s%s", strings.Repeat("  ", depth+1), n.Name)
			if n.Site >= 0 {
				fmt.Fprintf(&b, " site=%d", n.Site)
			}
			fmt.Fprintf(&b, " +%dµs %dµs", n.StartUs, n.DurUs)
			for _, a := range n.Attrs {
				fmt.Fprintf(&b, " %s=%s", a.Key, a.Val)
			}
			b.WriteByte('\n')
			walk(n.Children, depth+1)
		}
	}
	walk(t.buildTree(), 0)
	return b.String()
}
