package obs

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// ValidateExposition parses Prometheus text exposition format 0.0.4 and
// returns every sample keyed by "name{labels}" (labels exactly as they
// appeared, "" for none). It is the checking half of WritePrometheus:
// obscheck and the CI smoke run feed scraped /metrics bodies through it
// and fail on the first malformed line. The checks are the ones a real
// scraper enforces — metric-name syntax, balanced quoted label values,
// parseable sample values, samples only for TYPEd families it has seen
// when a TYPE comment exists for that name.
func ValidateExposition(r io.Reader) (map[string]float64, error) {
	samples := make(map[string]float64)
	typed := make(map[string]string) // base name -> type
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if strings.TrimSpace(line) == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.SplitN(line, " ", 4)
			if len(fields) >= 2 && (fields[1] == "HELP" || fields[1] == "TYPE") {
				if len(fields) < 3 || !validMetricName(fields[2]) {
					return nil, fmt.Errorf("line %d: malformed %s comment: %q", lineNo, fields[1], line)
				}
				if fields[1] == "TYPE" {
					if len(fields) < 4 {
						return nil, fmt.Errorf("line %d: TYPE comment missing type: %q", lineNo, line)
					}
					switch fields[3] {
					case "counter", "gauge", "histogram", "summary", "untyped":
					default:
						return nil, fmt.Errorf("line %d: unknown metric type %q", lineNo, fields[3])
					}
					typed[fields[2]] = fields[3]
				}
			}
			continue
		}
		name, lbl, val, err := parseSample(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %v", lineNo, err)
		}
		if base := baseName(name); len(typed) > 0 {
			if _, ok := typed[base]; !ok {
				return nil, fmt.Errorf("line %d: sample %q has no preceding # TYPE", lineNo, name)
			}
		}
		key := name
		if lbl != "" {
			key += "{" + lbl + "}"
		}
		if _, dup := samples[key]; dup {
			return nil, fmt.Errorf("line %d: duplicate sample %q", lineNo, key)
		}
		samples[key] = val
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return samples, nil
}

// baseName strips histogram/summary sample suffixes so _bucket/_sum/_count
// lines resolve to their family's TYPE comment.
func baseName(name string) string {
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		if strings.HasSuffix(name, suf) {
			return name[:len(name)-len(suf)]
		}
	}
	return name
}

func validMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_', r == ':':
		case r >= '0' && r <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

func validLabelName(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_':
		case r >= '0' && r <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// parseSample splits a sample line into (metric name, raw label body, value).
func parseSample(line string) (name, labelBody string, val float64, err error) {
	rest := line
	if i := strings.IndexAny(rest, "{ \t"); i >= 0 {
		name, rest = rest[:i], rest[i:]
	} else {
		return "", "", 0, fmt.Errorf("sample has no value: %q", line)
	}
	if !validMetricName(name) {
		return "", "", 0, fmt.Errorf("invalid metric name %q", name)
	}
	if strings.HasPrefix(rest, "{") {
		body, tail, perr := scanLabels(rest[1:])
		if perr != nil {
			return "", "", 0, fmt.Errorf("%s: %v", name, perr)
		}
		labelBody, rest = body, tail
	}
	rest = strings.TrimSpace(rest)
	// The format allows an optional trailing timestamp; take field one.
	valStr := rest
	if i := strings.IndexAny(rest, " \t"); i >= 0 {
		valStr = rest[:i]
	}
	if valStr == "" {
		return "", "", 0, fmt.Errorf("%s: missing sample value", name)
	}
	v, perr := strconv.ParseFloat(valStr, 64)
	if perr != nil {
		return "", "", 0, fmt.Errorf("%s: bad sample value %q", name, valStr)
	}
	return name, labelBody, v, nil
}

// scanLabels consumes a label body after the opening brace, validating
// each name="value" pair (escapes honoured), and returns the raw body
// plus the remainder after the closing brace.
func scanLabels(s string) (body, rest string, err error) {
	i := 0
	for {
		if i >= len(s) {
			return "", "", fmt.Errorf("unterminated label set")
		}
		if s[i] == '}' {
			return s[:i], s[i+1:], nil
		}
		start := i
		for i < len(s) && s[i] != '=' {
			i++
		}
		if i >= len(s) {
			return "", "", fmt.Errorf("label without '='")
		}
		if !validLabelName(s[start:i]) {
			return "", "", fmt.Errorf("invalid label name %q", s[start:i])
		}
		i++ // '='
		if i >= len(s) || s[i] != '"' {
			return "", "", fmt.Errorf("label value not quoted")
		}
		i++
		for i < len(s) && s[i] != '"' {
			if s[i] == '\\' {
				if i+1 >= len(s) {
					return "", "", fmt.Errorf("dangling escape in label value")
				}
				switch s[i+1] {
				case '\\', '"', 'n':
				default:
					return "", "", fmt.Errorf("bad escape \\%c in label value", s[i+1])
				}
				i++
			}
			i++
		}
		if i >= len(s) {
			return "", "", fmt.Errorf("unterminated label value")
		}
		i++ // closing quote
		if i < len(s) && s[i] == ',' {
			i++
		}
	}
}
