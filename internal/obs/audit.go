package obs

import (
	"math"
	"sync"
)

// The paper's guarantees, as checkable invariants on one coordinator
// round ("visit each site once"): the coordinator sends at most one
// request frame per site per round; each site's response data is bounded
// by the fragmentation — O(|Vf|²) booleans per site, independent of |G|;
// and local evaluation time depends on the fragment, not the whole
// graph, so eval time should not correlate with |G| across deployments.
// Auditor checks the first two exactly per observed round and tracks the
// third statistically across deployments of different sizes.

// AuditRound is one round's per-site observations, reported by the
// coordinator after the round settles.
type AuditRound struct {
	Query     string  // query kind label ("reach", "dist", "rpq", "batch")
	Frames    []int64 // request frames sent to each site this round
	RespBytes []int64 // response payload bytes from each site (span overhead excluded)
	EvalNs    []int64 // site-reported local evaluation time, 0 if unreported
}

// DefaultByteFactor is the constant c in the response-volume bound
// c·(|Vf|+1)². Each boolean equation is a variable plus a clause over at
// most |Vf| in-node variables; the wire encoding spends a handful of
// bytes per term, so 64 is generous without being vacuous — a site
// shipping its whole fragment's adjacency (O(|Ef|), which can exceed
// |Vf|²·c on dense fragments with fat encodings) would trip it.
const DefaultByteFactor = 64

// Auditor verifies the paper's per-round guarantees and aggregates
// violation counters. All methods are safe for concurrent use.
type Auditor struct {
	mu sync.Mutex

	vf         int64 // max fragment in-node count of the current deployment
	graphNodes int64 // |G| of the current deployment
	byteFactor int64

	rounds          int64
	frameViolations int64
	byteViolations  int64
	maxFrames       int64 // worst frames-per-site-per-round seen
	maxRespBytes    int64 // worst per-site response payload seen
	byteBound       int64 // current c·(|Vf|+1)²

	// eval-time-vs-|G| correlation: one (|G|, mean eval ns) sample per
	// deployment size, pushed by SetDeployment-scoped benchmark runs.
	sizes   []float64
	evalMus []float64
	curSum  int64
	curN    int64
}

// NewAuditor returns an auditor with the default byte factor.
func NewAuditor() *Auditor {
	return &Auditor{byteFactor: DefaultByteFactor}
}

// SetByteFactor overrides the constant c in the response bound.
func (a *Auditor) SetByteFactor(c int64) {
	a.mu.Lock()
	if c > 0 {
		a.byteFactor = c
		a.byteBound = c * (a.vf + 1) * (a.vf + 1)
	}
	a.mu.Unlock()
}

// SetDeployment records the fragmentation the next rounds run against:
// vf is the largest per-fragment in-node count, graphNodes is |G|. If a
// previous deployment accumulated eval samples, they are folded into one
// (|G|, mean eval) point for the correlation estimate.
func (a *Auditor) SetDeployment(vf, graphNodes int64) {
	a.mu.Lock()
	a.flushEvalLocked()
	if vf < 0 {
		vf = 0
	}
	a.vf = vf
	a.graphNodes = graphNodes
	a.byteBound = a.byteFactor * (vf + 1) * (vf + 1)
	a.mu.Unlock()
}

func (a *Auditor) flushEvalLocked() {
	if a.curN > 0 && a.graphNodes > 0 {
		a.sizes = append(a.sizes, float64(a.graphNodes))
		a.evalMus = append(a.evalMus, float64(a.curSum)/float64(a.curN))
	}
	a.curSum, a.curN = 0, 0
}

// Observe audits one settled round.
func (a *Auditor) Observe(r AuditRound) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.rounds++
	for _, f := range r.Frames {
		if f > a.maxFrames {
			a.maxFrames = f
		}
		if f > 1 {
			a.frameViolations++
		}
	}
	for _, b := range r.RespBytes {
		if b > a.maxRespBytes {
			a.maxRespBytes = b
		}
		if a.byteBound > 0 && b > a.byteBound {
			a.byteViolations++
		}
	}
	for _, ns := range r.EvalNs {
		if ns > 0 {
			a.curSum += ns
			a.curN++
		}
	}
}

// pearson computes the sample correlation coefficient; NaN when fewer
// than two points or zero variance.
func pearson(xs, ys []float64) float64 {
	n := float64(len(xs))
	if n < 2 {
		return math.NaN()
	}
	var sx, sy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
	}
	mx, my := sx/n, sy/n
	var sxy, sxx, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return math.NaN()
	}
	return sxy / math.Sqrt(sxx*syy)
}

// AuditSummary is the /guarantees payload.
type AuditSummary struct {
	Rounds           int64 `json:"rounds"`
	FrameViolations  int64 `json:"frame_violations"`
	ByteViolations   int64 `json:"byte_violations"`
	MaxFramesPerSite int64 `json:"max_frames_per_site_per_round"`
	MaxRespBytes     int64 `json:"max_resp_bytes_per_site"`
	ByteBound        int64 `json:"byte_bound"` // c·(|Vf|+1)²
	ByteFactor       int64 `json:"byte_factor"`
	Vf               int64 `json:"vf"`
	GraphNodes       int64 `json:"graph_nodes"`
	// EvalSizeCorr is Pearson r between |G| and mean eval time across
	// deployments of different sizes; meaningful only when SizePoints ≥ 2
	// (exp N11 sweeps sizes; a single live deployment reports NaN→omitted).
	EvalSizeCorr *float64 `json:"eval_size_correlation,omitempty"`
	SizePoints   int      `json:"size_points"`
}

// Summary snapshots the audit state. The current deployment's pending
// eval samples are included as a provisional point for the correlation.
func (a *Auditor) Summary() AuditSummary {
	a.mu.Lock()
	defer a.mu.Unlock()
	sizes := append([]float64(nil), a.sizes...)
	evals := append([]float64(nil), a.evalMus...)
	if a.curN > 0 && a.graphNodes > 0 {
		sizes = append(sizes, float64(a.graphNodes))
		evals = append(evals, float64(a.curSum)/float64(a.curN))
	}
	s := AuditSummary{
		Rounds:           a.rounds,
		FrameViolations:  a.frameViolations,
		ByteViolations:   a.byteViolations,
		MaxFramesPerSite: a.maxFrames,
		MaxRespBytes:     a.maxRespBytes,
		ByteBound:        a.byteBound,
		ByteFactor:       a.byteFactor,
		Vf:               a.vf,
		GraphNodes:       a.graphNodes,
		SizePoints:       len(sizes),
	}
	if r := pearson(sizes, evals); !math.IsNaN(r) {
		s.EvalSizeCorr = &r
	}
	return s
}

// Violations reports the total violation count (both kinds), for quick
// CI gating.
func (a *Auditor) Violations() int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.frameViolations + a.byteViolations
}

// Register exposes the auditor's counters as gauges on r.
func (a *Auditor) Register(r *Registry) {
	r.GaugeFunc("distreach_guarantee_rounds_total", "Rounds audited against the paper's guarantees.", func() float64 {
		a.mu.Lock()
		defer a.mu.Unlock()
		return float64(a.rounds)
	})
	r.GaugeFuncVec("distreach_guarantee_violations_total", "Guarantee violations observed, by invariant.", "invariant", "frames_per_site", func() float64 {
		a.mu.Lock()
		defer a.mu.Unlock()
		return float64(a.frameViolations)
	})
	r.GaugeFuncVec("distreach_guarantee_violations_total", "Guarantee violations observed, by invariant.", "invariant", "response_bytes", func() float64 {
		a.mu.Lock()
		defer a.mu.Unlock()
		return float64(a.byteViolations)
	})
	r.GaugeFunc("distreach_guarantee_byte_bound", "Current response-volume bound c*(|Vf|+1)^2 in bytes.", func() float64 {
		a.mu.Lock()
		defer a.mu.Unlock()
		return float64(a.byteBound)
	})
}
