package obs

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestRegistryExposition(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_requests_total", "Requests.")
	c.Add(3)
	cv := r.CounterVec("test_by_class_total", "By class.", "class")
	cv.With("reach").Add(2)
	cv.With("dist").Inc()
	g := r.Gauge("test_temp", "A gauge.")
	g.Set(1.5)
	g.Add(-0.5)
	r.GaugeFunc("test_sampled", "Sampled gauge.", func() float64 { return 42 })
	h := r.Histogram("test_latency_seconds", "Latency.", []float64{0.01, 0.1, 1})
	h.Observe(0.005)
	h.Observe(0.05)
	h.Observe(5)

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()

	samples, err := ValidateExposition(strings.NewReader(out))
	if err != nil {
		t.Fatalf("exposition failed validation: %v\n%s", err, out)
	}
	want := map[string]float64{
		"test_requests_total":                    3,
		`test_by_class_total{class="reach"}`:     2,
		`test_by_class_total{class="dist"}`:      1,
		"test_temp":                              1,
		"test_sampled":                           42,
		`test_latency_seconds_bucket{le="0.01"}`: 1,
		`test_latency_seconds_bucket{le="0.1"}`:  2,
		`test_latency_seconds_bucket{le="1"}`:    2,
		`test_latency_seconds_bucket{le="+Inf"}`: 3,
		"test_latency_seconds_count":             3,
	}
	for k, v := range want {
		got, ok := samples[k]
		if !ok {
			t.Fatalf("missing sample %q in:\n%s", k, out)
		}
		if got != v {
			t.Fatalf("sample %q = %v, want %v", k, got, v)
		}
	}
	if sum := samples["test_latency_seconds_sum"]; math.Abs(sum-5.055) > 1e-9 {
		t.Fatalf("histogram sum = %v, want 5.055", sum)
	}
}

func TestRegistryIdempotentAndEscaping(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("dup_total", "first")
	b := r.Counter("dup_total", "second registration returns same counter")
	if a != b {
		t.Fatal("re-registration returned a different counter")
	}
	cv := r.CounterVec("esc_total", `help with \ and newline`+"\n", "path")
	cv.With(`va"l\ue` + "\n").Inc()
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := ValidateExposition(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatalf("escaped exposition invalid: %v\n%s", err, buf.String())
	}
	defer func() {
		if recover() == nil {
			t.Fatal("conflicting re-registration did not panic")
		}
	}()
	r.Gauge("dup_total", "wrong type")
}

func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := r.Counter("conc_total", "c")
			h := r.Histogram("conc_seconds", "h", nil)
			for j := 0; j < 1000; j++ {
				c.Inc()
				h.Observe(float64(j) / 1000)
				if j%100 == 0 {
					var buf bytes.Buffer
					r.WritePrometheus(&buf)
				}
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("conc_total", "c").Value(); got != 8000 {
		t.Fatalf("counter = %d, want 8000", got)
	}
	var buf bytes.Buffer
	r.WritePrometheus(&buf)
	samples, err := ValidateExposition(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if samples["conc_seconds_count"] != 8000 {
		t.Fatalf("histogram count = %v, want 8000", samples["conc_seconds_count"])
	}
}

func TestValidateExpositionRejects(t *testing.T) {
	bad := []string{
		"1leading_digit 3\n",
		"metric{label=\"unterminated 3\n",
		"metric{=\"x\"} 3\n",
		"metric notanumber\n",
		"# TYPE m bogus\nm 1\n",
		"# TYPE m counter\nm 1\nm 1\n",       // duplicate sample
		"# TYPE m counter\nother_metric 1\n", // sample without TYPE
		"metric{l=\"bad\\q\"} 1\n",           // bad escape
	}
	for _, s := range bad {
		if _, err := ValidateExposition(strings.NewReader(s)); err == nil {
			t.Fatalf("accepted malformed exposition: %q", s)
		}
	}
	// Untyped-only output (no comments at all) is fine.
	got, err := ValidateExposition(strings.NewReader("free_metric 1.5 1700000000\n"))
	if err != nil {
		t.Fatal(err)
	}
	if got["free_metric"] != 1.5 {
		t.Fatalf("free_metric = %v", got["free_metric"])
	}
}

func TestWireSpanRoundTrip(t *testing.T) {
	spans := []WireSpan{
		{Parent: -1, Name: "queue", StartOffsetNs: 10, DurNs: 1000},
		{Parent: 0, Name: "eval", StartOffsetNs: 1010, DurNs: 50000, Attrs: []Attr{
			{Key: "reachindex_outcome", Val: "hit"},
			{Key: "eqs", Val: "12"},
		}},
		{Parent: 1, Name: "partial", StartOffsetNs: 2000, DurNs: 5},
	}
	p := AppendWireSpans(nil, spans)
	p = append(p, 0xAA, 0xBB) // trailing body must survive
	got, rest, err := DecodeWireSpans(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(rest) != 2 || rest[0] != 0xAA {
		t.Fatalf("remainder wrong: %x", rest)
	}
	if len(got) != len(spans) {
		t.Fatalf("got %d spans, want %d", len(got), len(spans))
	}
	for i := range spans {
		if got[i].Parent != spans[i].Parent || got[i].Name != spans[i].Name ||
			got[i].StartOffsetNs != spans[i].StartOffsetNs || got[i].DurNs != spans[i].DurNs {
			t.Fatalf("span %d mismatch: %+v vs %+v", i, got[i], spans[i])
		}
		if len(got[i].Attrs) != len(spans[i].Attrs) {
			t.Fatalf("span %d attrs: %v vs %v", i, got[i].Attrs, spans[i].Attrs)
		}
		for j := range spans[i].Attrs {
			if got[i].Attrs[j] != spans[i].Attrs[j] {
				t.Fatalf("span %d attr %d: %v vs %v", i, j, got[i].Attrs[j], spans[i].Attrs[j])
			}
		}
	}
}

func TestWireSpanCapsAndMalformed(t *testing.T) {
	// Over-long fields are truncated at encode, not rejected.
	long := strings.Repeat("x", 300)
	p := AppendWireSpans(nil, []WireSpan{{Parent: -1, Name: long, Attrs: []Attr{{Key: long, Val: long}}}})
	got, _, err := DecodeWireSpans(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(got[0].Name) != maxSpanName || len(got[0].Attrs[0].Key) != maxAttrKeyLen || len(got[0].Attrs[0].Val) != maxAttrValLen {
		t.Fatalf("caps not applied: name=%d key=%d val=%d", len(got[0].Name), len(got[0].Attrs[0].Key), len(got[0].Attrs[0].Val))
	}
	// Truncated buffers and absurd counts must error, not panic.
	for _, b := range [][]byte{
		{},
		{0x00},
		{0xFF, 0xFF},                   // 65535 spans claimed
		{0x00, 0x01},                   // 1 span, no body
		{0x00, 0x01, 0xFF, 0xFF, 0x70}, // nameLen 112, no name
		append([]byte{0x00, 0x01, 0xFF, 0xFF, 0x01}, 'a'), // name but no times
	} {
		if _, _, err := DecodeWireSpans(b); err == nil {
			t.Fatalf("decoded malformed %x", b)
		}
	}
}

func TestBuilderAndTree(t *testing.T) {
	b := NewBuilder(0xabc, "reach")
	round := b.StartSpan(b.Root(), "round", Attr{Key: "attempt", Val: "1"})
	rpc := b.StartSpan(round, "rpc", Attr{Key: "site", Val: "0"})
	anchor := time.Now()
	b.AttachRemote(rpc, 0, anchor, []WireSpan{
		{Parent: -1, Name: "queue", StartOffsetNs: 0, DurNs: 100},
		{Parent: 0, Name: "eval", StartOffsetNs: 100, DurNs: 900, Attrs: []Attr{{Key: "reachindex_outcome", Val: "hit"}}},
	})
	b.End(rpc)
	b.End(round)
	b.AddSpan(b.Root(), "solve", time.Now(), time.Millisecond)
	tr := b.Finish()
	if tr.ID != 0xabc || len(tr.Spans) != 6 {
		t.Fatalf("trace: id=%x spans=%d", tr.ID, len(tr.Spans))
	}
	if tr2 := b.Finish(); tr2.Dur != tr.Dur {
		t.Fatal("second Finish changed the trace")
	}

	raw, err := tr.Tree()
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Tree []treeNode `json:"tree"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.Tree) != 1 || doc.Tree[0].Name != "reach" {
		t.Fatalf("root: %+v", doc.Tree)
	}
	// Find the remote eval span under rpc and check site + attr survived.
	var findEval func(nodes []treeNode) *treeNode
	findEval = func(nodes []treeNode) *treeNode {
		for i := range nodes {
			if nodes[i].Name == "eval" {
				return &nodes[i]
			}
			if n := findEval(nodes[i].Children); n != nil {
				return n
			}
		}
		return nil
	}
	ev := findEval(doc.Tree)
	if ev == nil || ev.Site != 0 || len(ev.Attrs) != 1 || ev.Attrs[0].Val != "hit" {
		t.Fatalf("eval span wrong: %+v", ev)
	}
	txt := tr.Format()
	if !strings.Contains(txt, "eval") || !strings.Contains(txt, "reachindex_outcome=hit") {
		t.Fatalf("Format missing eval span:\n%s", txt)
	}
}

func TestRecorderAnchoring(t *testing.T) {
	t0 := time.Now()
	rec := NewRecorder(t0)
	// A start before t0 (clock jitter) clamps to offset 0.
	rec.Span(-1, "queue", t0.Add(-time.Millisecond), t0.Add(time.Millisecond))
	i := rec.Span(-1, "eval", t0.Add(2*time.Millisecond), t0.Add(5*time.Millisecond))
	rec.Span(i, "partial", t0.Add(3*time.Millisecond), t0.Add(3*time.Millisecond))
	spans, rest, err := DecodeWireSpans(rec.Wire())
	if err != nil || len(rest) != 0 {
		t.Fatalf("decode: %v rest=%d", err, len(rest))
	}
	if spans[0].StartOffsetNs != 0 {
		t.Fatalf("pre-anchor start not clamped: %d", spans[0].StartOffsetNs)
	}
	if spans[1].StartOffsetNs != uint64(2*time.Millisecond) || spans[1].DurNs != uint64(3*time.Millisecond) {
		t.Fatalf("eval offsets: %+v", spans[1])
	}
	if spans[2].Parent != int16(i) {
		t.Fatalf("partial parent = %d, want %d", spans[2].Parent, i)
	}
}

func TestTraceStore(t *testing.T) {
	s := NewTraceStore(3)
	var slow []*Trace
	s.SetSlow(10*time.Millisecond, func(tr *Trace) { slow = append(slow, tr) })
	for i := 1; i <= 5; i++ {
		d := time.Duration(i) * 3 * time.Millisecond
		s.Put(&Trace{ID: uint64(i), Name: "q", Dur: d})
	}
	if s.Get(1) != nil || s.Get(2) != nil {
		t.Fatal("evicted traces still resolvable")
	}
	if tr := s.Get(5); tr == nil || tr.ID != 5 {
		t.Fatal("latest trace missing")
	}
	rec := s.Recent(10)
	if len(rec) != 3 || rec[0].ID != 5 || rec[2].ID != 3 {
		t.Fatalf("recent order wrong: %v", ids(rec))
	}
	// 12ms and 15ms traces (i=4,5) exceed the 10ms slow threshold.
	if len(slow) != 2 || slow[0].ID != 4 || slow[1].ID != 5 {
		t.Fatalf("slow log wrong: %v", ids(slow))
	}
}

func ids(trs []*Trace) []uint64 {
	out := make([]uint64, len(trs))
	for i, tr := range trs {
		out[i] = tr.ID
	}
	return out
}

func TestAuditor(t *testing.T) {
	a := NewAuditor()
	a.SetDeployment(10, 1000) // bound = 64 * 121 = 7744
	a.Observe(AuditRound{
		Query:     "reach",
		Frames:    []int64{1, 1, 1},
		RespBytes: []int64{100, 7744, 200},
		EvalNs:    []int64{1000, 2000, 3000},
	})
	if v := a.Violations(); v != 0 {
		t.Fatalf("clean round produced %d violations", v)
	}
	a.Observe(AuditRound{
		Query:     "reach",
		Frames:    []int64{2, 1},
		RespBytes: []int64{7745, 10},
	})
	s := a.Summary()
	if s.FrameViolations != 1 || s.ByteViolations != 1 {
		t.Fatalf("violations: %+v", s)
	}
	if s.MaxFramesPerSite != 2 || s.MaxRespBytes != 7745 || s.ByteBound != 7744 {
		t.Fatalf("extrema: %+v", s)
	}
	if s.Rounds != 2 {
		t.Fatalf("rounds = %d", s.Rounds)
	}

	// Correlation needs ≥2 deployment sizes; uncorrelated eval times stay
	// well under a strong-correlation threshold.
	a2 := NewAuditor()
	for i, n := range []int64{100, 1000, 10000, 100000} {
		a2.SetDeployment(10, n)
		// Eval time flat in |G| (with a wiggle): guarantee holds.
		a2.Observe(AuditRound{EvalNs: []int64{5000 + int64(i%2)*100}})
	}
	s2 := a2.Summary()
	if s2.SizePoints != 4 {
		t.Fatalf("size points = %d", s2.SizePoints)
	}
	if s2.EvalSizeCorr == nil {
		t.Fatal("correlation missing with 4 points")
	}
	if math.Abs(*s2.EvalSizeCorr) > 0.9 {
		t.Fatalf("flat eval times reported as strongly correlated: %v", *s2.EvalSizeCorr)
	}

	// Register renders cleanly.
	r := NewRegistry()
	a.Register(r)
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	samples, err := ValidateExposition(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if samples[`distreach_guarantee_violations_total{invariant="frames_per_site"}`] != 1 {
		t.Fatalf("registered violation gauge wrong: %v", samples)
	}
}
