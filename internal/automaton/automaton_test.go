package automaton

import (
	"testing"

	"distreach/internal/gen"
	"distreach/internal/graph"
	"distreach/internal/rx"
)

func TestGlushkovSmall(t *testing.T) {
	a := FromRegex(rx.MustParse("DB*|HR*"))
	// Positions: DB, HR. States: Start, Final, DB, HR.
	if a.NumStates() != 4 {
		t.Fatalf("|Vq| = %d, want 4", a.NumStates())
	}
	cases := []struct {
		seq  []string
		want bool
	}{
		{nil, true}, // both branches nullable
		{[]string{"DB"}, true},
		{[]string{"DB", "DB", "DB"}, true},
		{[]string{"HR", "HR"}, true},
		{[]string{"DB", "HR"}, false},
		{[]string{"FA"}, false},
	}
	for _, c := range cases {
		if got := a.AcceptsLabels(c.seq); got != c.want {
			t.Errorf("accepts(%v) = %v, want %v", c.seq, got, c.want)
		}
	}
}

func TestWildcard(t *testing.T) {
	a := FromRegex(rx.MustParse("A _ B"))
	if !a.AcceptsLabels([]string{"A", "ZZZ", "B"}) {
		t.Fatal("wildcard should match any label")
	}
	if a.AcceptsLabels([]string{"A", "B"}) {
		t.Fatal("wildcard consumes exactly one label")
	}
}

// TestAcceptsSampledStrings is the language property test: every string
// sampled from the regex must be accepted by its automaton.
func TestAcceptsSampledStrings(t *testing.T) {
	rng := gen.NewRNG(3)
	labels := []string{"a", "b", "c"}
	var rand func(depth int) *rx.Node
	rand = func(depth int) *rx.Node {
		if depth == 0 || rng.Intn(3) == 0 {
			return rx.Lbl(labels[rng.Intn(3)])
		}
		switch rng.Intn(3) {
		case 0:
			return rx.Cat(rand(depth-1), rand(depth-1))
		case 1:
			return rx.Alt(rand(depth-1), rand(depth-1))
		default:
			return rx.Kleene(rand(depth - 1))
		}
	}
	for i := 0; i < 300; i++ {
		re := rand(4)
		a := FromRegex(re)
		for j := 0; j < 5; j++ {
			seq := re.Sample(rng, 3)
			if !a.AcceptsLabels(seq) {
				t.Fatalf("automaton of %q rejects its own sample %v", re, seq)
			}
		}
	}
}

// TestRejectsMutatedStrings checks that the automaton is not trivially
// accepting: perturbing a sampled string with a fresh label not in the
// regex must be rejected.
func TestRejectsMutatedStrings(t *testing.T) {
	rng := gen.NewRNG(4)
	re := rx.MustParse("a (b|c)* a")
	a := FromRegex(re)
	for i := 0; i < 100; i++ {
		seq := re.Sample(rng, 4)
		pos := rng.Intn(len(seq))
		seq[pos] = "ZZZ"
		if a.AcceptsLabels(seq) {
			t.Fatalf("mutated sample %v accepted", seq)
		}
	}
}

func TestStateStructure(t *testing.T) {
	a := FromRegex(rx.MustParse("x y"))
	if a.MatchesLabel(Start, "x") || a.MatchesLabel(Final, "y") {
		t.Fatal("Start/Final must not label-match")
	}
	// Start must lead to the x position only.
	nx := a.Next(Start)
	if len(nx) != 1 || a.StateLabel(nx[0]) != "x" {
		t.Fatalf("Next(Start) = %v", nx)
	}
	// Transitions and prev are consistent.
	for u := 0; u < a.NumStates(); u++ {
		for _, v := range a.Next(u) {
			found := false
			for _, p := range a.Prev(v) {
				if p == u {
					found = true
				}
			}
			if !found {
				t.Fatalf("prev missing for edge (%d,%d)", u, v)
			}
		}
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New([]string{"a"}, [][2]int{{0, 9}}); err == nil {
		t.Fatal("out-of-range transition accepted")
	}
	if _, err := New([]string{"a"}, [][2]int{{2, 0}}); err == nil {
		t.Fatal("transition into Start accepted")
	}
	if _, err := New([]string{"a"}, [][2]int{{1, 2}}); err == nil {
		t.Fatal("transition out of Final accepted")
	}
}

func TestRandomAutomatonWellFormed(t *testing.T) {
	rng := gen.NewRNG(5)
	labels := []string{"a", "b", "c", "d"}
	for i := 0; i < 200; i++ {
		states := 2 + rng.Intn(12)
		trans := rng.Intn(30)
		a := Random(rng, states, trans, labels)
		if a.NumStates() != states {
			t.Fatalf("states = %d, want %d", a.NumStates(), states)
		}
		if len(a.Next(Final)) != 0 {
			t.Fatal("Final has outgoing transitions")
		}
		if len(a.Prev(Start)) != 0 {
			t.Fatal("Start has incoming transitions")
		}
		// Final must be reachable from Start through the transition graph.
		seen := make([]bool, a.NumStates())
		stack := []int{Start}
		seen[Start] = true
		for len(stack) > 0 {
			u := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, v := range a.Next(u) {
				if !seen[v] {
					seen[v] = true
					stack = append(stack, v)
				}
			}
		}
		if !seen[Final] {
			t.Fatal("Final unreachable from Start")
		}
	}
}

func TestEncodedSizeGrowsWithQuery(t *testing.T) {
	small := FromRegex(rx.MustParse("a"))
	big := FromRegex(rx.MustParse("a b c d e f (g|h)*"))
	if small.EncodedSize() >= big.EncodedSize() {
		t.Fatal("EncodedSize should grow with |R|")
	}
}

func TestEvalOnLabeledChain(t *testing.T) {
	// s -> A -> B -> A -> t; interior label word is "A B A".
	g := chain(t, []string{"S", "A", "B", "A", "T"})
	if !Eval(g, 0, 4, FromRegex(rx.MustParse("A B A"))) {
		t.Fatal("exact word rejected")
	}
	if !Eval(g, 0, 4, FromRegex(rx.MustParse("(A|B)*"))) {
		t.Fatal("universal word rejected")
	}
	if Eval(g, 0, 4, FromRegex(rx.MustParse("A B B"))) {
		t.Fatal("wrong word accepted")
	}
	if Eval(g, 0, 4, FromRegex(rx.MustParse("A B"))) {
		t.Fatal("prefix accepted")
	}
	// Direct edge = empty interior word: needs nullability.
	if !Eval(g, 0, 1, FromRegex(rx.MustParse("A*"))) {
		t.Fatal("edge with empty interior rejected under nullable R")
	}
	if Eval(g, 0, 1, FromRegex(rx.MustParse("A+"))) {
		t.Fatal("edge with empty interior accepted under non-nullable R")
	}
}

func TestEvalSelfQuery(t *testing.T) {
	g := chain(t, []string{"A", "A", "A"})
	if !Eval(g, 1, 1, FromRegex(rx.MustParse("A*"))) {
		t.Fatal("s==t with nullable R must hold (empty path)")
	}
	if Eval(g, 1, 1, FromRegex(rx.MustParse("A+"))) {
		t.Fatal("chain has no cycle; A+ from a node to itself must fail")
	}
}

func chain(t *testing.T, labels []string) *graph.Graph {
	t.Helper()
	b := graph.NewBuilder(len(labels))
	for _, l := range labels {
		b.AddNode(l)
	}
	for i := 0; i+1 < len(labels); i++ {
		b.AddEdge(graph.NodeID(i), graph.NodeID(i+1))
	}
	return b.MustBuild()
}
