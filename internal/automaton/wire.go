package automaton

import (
	"encoding/binary"
	"fmt"
)

// Binary wire codec for query automata, used by the TCP runtime to post
// Gq(R) to sites. Format (little-endian):
//
//	version u8 | nstates u32 | per state: labelLen u32, label bytes |
//	ntrans u32 | per transition: from u32, to u32
const wireVersion = 1

// MarshalBinary implements encoding.BinaryMarshaler.
func (a *Automaton) MarshalBinary() ([]byte, error) {
	b := []byte{wireVersion}
	b = binary.LittleEndian.AppendUint32(b, uint32(len(a.labels)))
	for _, l := range a.labels {
		b = binary.LittleEndian.AppendUint32(b, uint32(len(l)))
		b = append(b, l...)
	}
	b = binary.LittleEndian.AppendUint32(b, uint32(a.NumTransitions()))
	for u, vs := range a.next {
		for _, v := range vs {
			b = binary.LittleEndian.AppendUint32(b, uint32(u))
			b = binary.LittleEndian.AppendUint32(b, uint32(v))
		}
	}
	return b, nil
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler.
func (a *Automaton) UnmarshalBinary(data []byte) error {
	off := 0
	u8 := func() (byte, error) {
		if off+1 > len(data) {
			return 0, fmt.Errorf("automaton: truncated payload")
		}
		v := data[off]
		off++
		return v, nil
	}
	u32 := func() (uint32, error) {
		if off+4 > len(data) {
			return 0, fmt.Errorf("automaton: truncated payload")
		}
		v := binary.LittleEndian.Uint32(data[off:])
		off += 4
		return v, nil
	}
	v, err := u8()
	if err != nil {
		return err
	}
	if v != wireVersion {
		return fmt.Errorf("automaton: unsupported version %d", v)
	}
	ns, err := u32()
	if err != nil {
		return err
	}
	if int(ns) < 2 || int(ns) > len(data) {
		return fmt.Errorf("automaton: implausible state count %d", ns)
	}
	labels := make([]string, ns)
	for i := range labels {
		n, err := u32()
		if err != nil {
			return err
		}
		if off+int(n) > len(data) {
			return fmt.Errorf("automaton: truncated label")
		}
		labels[i] = string(data[off : off+int(n)])
		off += int(n)
	}
	nt, err := u32()
	if err != nil {
		return err
	}
	if int(nt)*8 > len(data)-off {
		return fmt.Errorf("automaton: implausible transition count %d", nt)
	}
	edges := make([][2]int, 0, nt)
	for i := 0; i < int(nt); i++ {
		from, err := u32()
		if err != nil {
			return err
		}
		to, err := u32()
		if err != nil {
			return err
		}
		edges = append(edges, [2]int{int(from), int(to)})
	}
	dec, err := New(labels[2:], edges)
	if err != nil {
		return err
	}
	*a = *dec
	return nil
}
