package automaton

import (
	"testing"

	"distreach/internal/gen"
	"distreach/internal/rx"
)

func TestAutomatonWireRoundTrip(t *testing.T) {
	rng := gen.NewRNG(71)
	labels := []string{"alpha", "beta", "g g", ""}
	for trial := 0; trial < 200; trial++ {
		a := Random(rng, 2+rng.Intn(10), rng.Intn(25), labels)
		data, err := a.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		var back Automaton
		if err := back.UnmarshalBinary(data); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if back.NumStates() != a.NumStates() || back.NumTransitions() != a.NumTransitions() {
			t.Fatalf("trial %d: shape changed: %v -> %v", trial, a, &back)
		}
		for u := 0; u < a.NumStates(); u++ {
			if back.StateLabel(u) != a.StateLabel(u) {
				t.Fatalf("trial %d: label of state %d changed", trial, u)
			}
			nx, bx := a.Next(u), back.Next(u)
			if len(nx) != len(bx) {
				t.Fatalf("trial %d: fanout of %d changed", trial, u)
			}
			for i := range nx {
				if nx[i] != bx[i] {
					t.Fatalf("trial %d: transition changed", trial)
				}
			}
		}
		// The decoded automaton must accept the same strings.
		seq := make([]string, rng.Intn(5))
		for i := range seq {
			seq[i] = labels[rng.Intn(len(labels))]
		}
		if a.AcceptsLabels(seq) != back.AcceptsLabels(seq) {
			t.Fatalf("trial %d: acceptance changed on %v", trial, seq)
		}
	}
}

func TestAutomatonWireFromRegex(t *testing.T) {
	a := FromRegex(rx.MustParse("DB*|HR*"))
	data, err := a.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var back Automaton
	if err := back.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	for _, c := range []struct {
		seq  []string
		want bool
	}{
		{nil, true},
		{[]string{"DB", "DB"}, true},
		{[]string{"DB", "HR"}, false},
	} {
		if got := back.AcceptsLabels(c.seq); got != c.want {
			t.Errorf("decoded accepts(%v) = %v, want %v", c.seq, got, c.want)
		}
	}
}

func TestAutomatonWireRejectsGarbage(t *testing.T) {
	good, err := FromRegex(rx.MustParse("a b")).MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	garbage := [][]byte{
		nil,
		{},
		{9},                     // wrong version
		{1},                     // missing state count
		{1, 1, 0, 0, 0},         // fewer than 2 states
		{1, 255, 255, 255, 255}, // absurd state count
		good[:len(good)-3],      // truncated transitions
		append(append([]byte{}, good[:5]...), 200), // truncated label
	}
	for i, data := range garbage {
		var a Automaton
		if err := a.UnmarshalBinary(data); err == nil {
			t.Errorf("case %d: garbage accepted", i)
		}
	}
}
