package automaton

import (
	"testing"

	"distreach/internal/gen"
	"distreach/internal/rx"
)

// TestAutomatonAgreesWithDerivatives cross-checks two entirely different
// decision procedures on random regexes and random strings: the Glushkov
// query automaton (AcceptsLabels) and Brzozowski derivatives (rx.Match).
// Any construction bug in either shows up as a disagreement.
func TestAutomatonAgreesWithDerivatives(t *testing.T) {
	rng := gen.NewRNG(33)
	labels := []string{"a", "b", "c"}
	var rand func(depth int) *rx.Node
	rand = func(depth int) *rx.Node {
		if depth == 0 || rng.Intn(3) == 0 {
			switch rng.Intn(5) {
			case 0:
				return rx.Eps()
			case 1:
				return rx.Lbl(rx.Wildcard)
			default:
				return rx.Lbl(labels[rng.Intn(3)])
			}
		}
		switch rng.Intn(3) {
		case 0:
			return rx.Cat(rand(depth-1), rand(depth-1))
		case 1:
			return rx.Alt(rand(depth-1), rand(depth-1))
		default:
			return rx.Kleene(rand(depth - 1))
		}
	}
	randSeq := func() []string {
		seq := make([]string, rng.Intn(6))
		for i := range seq {
			seq[i] = labels[rng.Intn(3)]
		}
		return seq
	}
	for i := 0; i < 500; i++ {
		re := rand(4)
		a := FromRegex(re)
		// Random strings plus samples of the language itself.
		for j := 0; j < 6; j++ {
			var seq []string
			if j < 3 {
				seq = randSeq()
			} else {
				seq = re.Sample(rng, 3)
			}
			got := a.AcceptsLabels(seq)
			want := re.Match(seq)
			if got != want {
				t.Fatalf("disagreement on %q with %v: automaton=%v derivatives=%v",
					re, seq, got, want)
			}
		}
	}
}
