package automaton

import "distreach/internal/graph"

// Eval answers the regular reachability query qrr(s, t, R) on a centralized
// graph by BFS over the product of g and the query automaton a: it reports
// whether some path from s to t has a label accepted by a. It is the
// centralized engine behind the disRPQn baseline and the oracle for
// property-based tests of disRPQ.
func Eval(g *graph.Graph, s, t graph.NodeID, a *Automaton) bool {
	if s == t && a.AcceptsLabels(nil) {
		return true
	}
	nq := a.NumStates()
	seen := make([]bool, g.NumNodes()*nq)
	type pn struct {
		v graph.NodeID
		u int
	}
	queue := []pn{{s, Start}}
	seen[int(s)*nq+Start] = true
	for len(queue) > 0 {
		p := queue[0]
		queue = queue[1:]
		for _, w := range g.Out(p.v) {
			for _, u2 := range a.Next(p.u) {
				switch {
				case u2 == Final:
					if w == t {
						return true
					}
				case a.MatchesLabel(u2, g.Label(w)):
					if !seen[int(w)*nq+u2] {
						seen[int(w)*nq+u2] = true
						queue = append(queue, pn{w, u2})
					}
				}
			}
		}
	}
	return false
}
