package automaton

import (
	"distreach/internal/gen"
)

// Random generates a query automaton with the requested complexity
// (|Vq| = states, |Eq| ≈ transitions, labels drawn from the given
// alphabet). This mirrors the paper's Exp-3 setup, which specifies query
// complexity directly as (|Vq|, |Eq|, |Lq|) triples such as (8, 16, 8).
//
// The generator guarantees that Final is reachable from Start (a random
// "spine" Start -> p1 -> ... -> pj -> Final is always included), so
// generated queries have non-trivial acceptance. states must be >= 2;
// transitions beyond the maximum simple-transition count are ignored.
func Random(rng *gen.RNG, states, transitions int, labels []string) *Automaton {
	if states < 2 {
		states = 2
	}
	positions := states - 2
	posLabels := make([]string, positions)
	for i := range posLabels {
		posLabels[i] = labels[rng.Intn(len(labels))]
	}
	type edge = [2]int
	seen := map[edge]bool{}
	var edges []edge
	add := func(u, v int) {
		if v == Start || u == Final || seen[edge{u, v}] {
			return
		}
		seen[edge{u, v}] = true
		edges = append(edges, edge{u, v})
	}
	// Spine through a random subset of positions.
	if positions == 0 {
		add(Start, Final)
	} else {
		perm := rng.Perm(positions)
		spine := 1 + rng.Intn(positions)
		prev := Start
		for i := 0; i < spine; i++ {
			p := perm[i] + 2
			add(prev, p)
			prev = p
		}
		add(prev, Final)
	}
	// Random extra transitions up to the requested count.
	for attempts := 0; len(edges) < transitions && attempts < 20*transitions; attempts++ {
		u := rng.Intn(states)
		v := rng.Intn(states)
		add(u, v)
	}
	a, err := New(posLabels, edges)
	if err != nil {
		// add() filters every illegal transition, so New cannot fail.
		panic("automaton: random generation produced invalid automaton: " + err.Error())
	}
	return a
}
