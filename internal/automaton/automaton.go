// Package automaton implements the query automaton Gq(R) of Section 5.1: a
// variation of an ε-free NFA whose states carry node labels. In contrast to
// a traditional NFA, a transition uv -> u'v is taken along a graph edge
// (v, v') when the labels of the states match the labels of the endpoint
// nodes. The start state us and the final state ut correspond to the query
// endpoints s and t themselves (in Fig. 6 they are drawn with the node
// names Ann and Mark).
//
// The construction is the Glushkov position automaton (the ε-free NFA
// construction of Hromkovic et al. [15] referenced by the paper): one state
// per label occurrence of R, plus the distinguished Start and Final states.
// It is linear in |R|.
package automaton

import (
	"fmt"
	"sort"

	"distreach/internal/rx"
)

// Distinguished state indices. Positions occupy indices >= 2.
const (
	Start = 0 // us: matched only by the source node s
	Final = 1 // ut: matched only by the target node t
)

// Automaton is an immutable query automaton Gq(R).
type Automaton struct {
	labels []string // state -> label; "" for Start/Final
	next   [][]int  // child states (Eq), sorted
	prev   [][]int  // parent states, sorted
}

// FromRegex builds the query automaton of the regular expression re using
// the Glushkov position construction:
//
//	Start -> p        for p in First(re)
//	p -> q            for q in Follow(p)
//	p -> Final        for p in Last(re)
//	Start -> Final    if re is nullable
func FromRegex(re *rx.Node) *Automaton {
	g := &glushkov{}
	info := g.analyze(re)
	n := 2 + len(g.labels)
	a := &Automaton{
		labels: make([]string, n),
		next:   make([][]int, n),
		prev:   make([][]int, n),
	}
	for i, l := range g.labels {
		a.labels[2+i] = l
	}
	add := func(u, v int) { a.next[u] = append(a.next[u], v) }
	for _, p := range info.first {
		add(Start, p+2)
	}
	if info.nullable {
		add(Start, Final)
	}
	for p, fs := range g.follow {
		for _, q := range fs {
			add(p+2, q+2)
		}
	}
	for _, p := range info.last {
		add(p+2, Final)
	}
	for u := range a.next {
		sort.Ints(a.next[u])
		a.next[u] = dedupInts(a.next[u])
	}
	a.buildPrev()
	return a
}

// New constructs an automaton directly from explicit components; used by the
// workload generator, which (like the paper's Exp-3) specifies query
// complexity as (|Vq|, |Eq|, |Lq|) rather than as a concrete regex. States
// 0 and 1 are Start and Final; labels[i] labels state i+2.
func New(labels []string, edges [][2]int) (*Automaton, error) {
	n := 2 + len(labels)
	a := &Automaton{
		labels: make([]string, n),
		next:   make([][]int, n),
		prev:   make([][]int, n),
	}
	copy(a.labels[2:], labels)
	for _, e := range edges {
		u, v := e[0], e[1]
		if u < 0 || u >= n || v < 0 || v >= n {
			return nil, fmt.Errorf("automaton: transition (%d,%d) out of range [0,%d)", u, v, n)
		}
		if v == Start {
			return nil, fmt.Errorf("automaton: transition into Start state")
		}
		if u == Final {
			return nil, fmt.Errorf("automaton: transition out of Final state")
		}
		a.next[u] = append(a.next[u], v)
	}
	for u := range a.next {
		sort.Ints(a.next[u])
		a.next[u] = dedupInts(a.next[u])
	}
	a.buildPrev()
	return a, nil
}

func (a *Automaton) buildPrev() {
	for u, vs := range a.next {
		for _, v := range vs {
			a.prev[v] = append(a.prev[v], u)
		}
	}
	for v := range a.prev {
		sort.Ints(a.prev[v])
	}
}

func dedupInts(xs []int) []int {
	out := xs[:0]
	for i, x := range xs {
		if i == 0 || xs[i-1] != x {
			out = append(out, x)
		}
	}
	return out
}

// NumStates reports |Vq| including Start and Final.
func (a *Automaton) NumStates() int { return len(a.labels) }

// NumTransitions reports |Eq|.
func (a *Automaton) NumTransitions() int {
	n := 0
	for _, vs := range a.next {
		n += len(vs)
	}
	return n
}

// Next returns the child states of u (u' with (u, u') in Eq). Callers must
// not modify the returned slice.
func (a *Automaton) Next(u int) []int { return a.next[u] }

// Prev returns the parent states of u. Callers must not modify the returned
// slice.
func (a *Automaton) Prev(u int) []int { return a.prev[u] }

// StateLabel returns Lq(u) for a position state; it is "" for Start/Final,
// whose matching is positional (s and t respectively).
func (a *Automaton) StateLabel(u int) string { return a.labels[u] }

// MatchesLabel reports whether position state u is compatible with a node
// carrying the given label. Start and Final never label-match: they are
// matched positionally by s and t.
func (a *Automaton) MatchesLabel(u int, label string) bool {
	if u == Start || u == Final {
		return false
	}
	return a.labels[u] == rx.Wildcard || a.labels[u] == label
}

// AcceptsLabels reports whether the label sequence seq (the label of a path,
// i.e. the labels of the interior nodes between s and t) is accepted. This
// is plain NFA simulation and is used by tests and by the centralized
// baseline.
func (a *Automaton) AcceptsLabels(seq []string) bool {
	cur := map[int]bool{Start: true}
	for _, l := range seq {
		nxt := map[int]bool{}
		for p := range cur {
			for _, q := range a.next[p] {
				if a.MatchesLabel(q, l) {
					nxt[q] = true
				}
			}
		}
		if len(nxt) == 0 {
			return false
		}
		cur = nxt
	}
	for p := range cur {
		for _, q := range a.next[p] {
			if q == Final {
				return true
			}
		}
	}
	return false
}

// String summarizes the automaton.
func (a *Automaton) String() string {
	return fmt.Sprintf("Gq{|Vq|=%d, |Eq|=%d}", a.NumStates(), a.NumTransitions())
}

// EncodedSize estimates the bytes to ship Gq(R) to a site: 8 bytes per
// transition plus label bytes, the O(|Gq|) term of the traffic analysis.
func (a *Automaton) EncodedSize() int {
	size := 8
	for _, l := range a.labels {
		size += 4 + len(l)
	}
	size += 8 * a.NumTransitions()
	return size
}

// glushkov carries the per-position bookkeeping of the construction.
type glushkov struct {
	labels []string // position -> label
	follow [][]int  // position -> follow set
}

type ginfo struct {
	nullable    bool
	first, last []int
}

func (g *glushkov) analyze(n *rx.Node) ginfo {
	switch n.Kind {
	case rx.Empty:
		return ginfo{nullable: true}
	case rx.Label:
		p := len(g.labels)
		g.labels = append(g.labels, n.Label)
		g.follow = append(g.follow, nil)
		return ginfo{first: []int{p}, last: []int{p}}
	case rx.Concat:
		l := g.analyze(n.Left)
		r := g.analyze(n.Right)
		for _, p := range l.last {
			g.follow[p] = append(g.follow[p], r.first...)
		}
		out := ginfo{nullable: l.nullable && r.nullable}
		out.first = append(out.first, l.first...)
		if l.nullable {
			out.first = append(out.first, r.first...)
		}
		out.last = append(out.last, r.last...)
		if r.nullable {
			out.last = append(out.last, l.last...)
		}
		return out
	case rx.Union:
		l := g.analyze(n.Left)
		r := g.analyze(n.Right)
		return ginfo{
			nullable: l.nullable || r.nullable,
			first:    append(append([]int{}, l.first...), r.first...),
			last:     append(append([]int{}, l.last...), r.last...),
		}
	case rx.Star:
		l := g.analyze(n.Left)
		for _, p := range l.last {
			g.follow[p] = append(g.follow[p], l.first...)
		}
		return ginfo{nullable: true, first: l.first, last: l.last}
	}
	panic("automaton: unknown rx node kind")
}
