// Package stats holds the small numeric and formatting helpers used by the
// benchmark harness to print the paper's tables and figure series.
package stats

import (
	"fmt"
	"sort"
	"time"
)

// MeanDuration returns the arithmetic mean of ds (0 for empty input).
func MeanDuration(ds []time.Duration) time.Duration {
	if len(ds) == 0 {
		return 0
	}
	var sum time.Duration
	for _, d := range ds {
		sum += d
	}
	return sum / time.Duration(len(ds))
}

// Percentile returns the p-th percentile (0..100) of ds using
// nearest-rank; it sorts a copy.
func Percentile(ds []time.Duration, p float64) time.Duration {
	if len(ds) == 0 {
		return 0
	}
	cp := append([]time.Duration(nil), ds...)
	sort.Slice(cp, func(i, j int) bool { return cp[i] < cp[j] })
	rank := int(p/100*float64(len(cp))+0.5) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(cp) {
		rank = len(cp) - 1
	}
	return cp[rank]
}

// MeanInt64 returns the arithmetic mean of xs (0 for empty input).
func MeanInt64(xs []int64) int64 {
	if len(xs) == 0 {
		return 0
	}
	var sum int64
	for _, x := range xs {
		sum += x
	}
	return sum / int64(len(xs))
}

// Bytes renders a byte count in a human-readable unit (B, KB, MB, GB).
func Bytes(n int64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.2fGB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.2fMB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.2fKB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%dB", n)
	}
}

// Millis renders a duration as fractional milliseconds.
func Millis(d time.Duration) string {
	return fmt.Sprintf("%.2fms", float64(d)/float64(time.Millisecond))
}

// Ratio renders a/b as a percentage string ("n/a" when b is 0).
func Ratio(a, b int64) string {
	if b == 0 {
		return "n/a"
	}
	return fmt.Sprintf("%.1f%%", 100*float64(a)/float64(b))
}
