package stats

import (
	"testing"
	"time"
)

func TestMeanDuration(t *testing.T) {
	if MeanDuration(nil) != 0 {
		t.Fatal("empty mean")
	}
	ds := []time.Duration{time.Second, 3 * time.Second}
	if MeanDuration(ds) != 2*time.Second {
		t.Fatal("mean wrong")
	}
}

func TestPercentile(t *testing.T) {
	ds := []time.Duration{5, 1, 3, 2, 4}
	if Percentile(ds, 50) != 3 {
		t.Fatalf("p50 = %v", Percentile(ds, 50))
	}
	if Percentile(ds, 100) != 5 || Percentile(ds, 0) != 1 {
		t.Fatal("extremes wrong")
	}
	if Percentile(nil, 50) != 0 {
		t.Fatal("empty percentile")
	}
	// Input must not be mutated.
	if ds[0] != 5 {
		t.Fatal("input sorted in place")
	}
}

func TestMeanInt64(t *testing.T) {
	if MeanInt64([]int64{2, 4, 9}) != 5 {
		t.Fatal("int mean wrong")
	}
	if MeanInt64(nil) != 0 {
		t.Fatal("empty int mean")
	}
}

func TestBytes(t *testing.T) {
	cases := map[int64]string{
		12:      "12B",
		2048:    "2.00KB",
		3 << 20: "3.00MB",
		5 << 30: "5.00GB",
	}
	for in, want := range cases {
		if got := Bytes(in); got != want {
			t.Errorf("Bytes(%d) = %q, want %q", in, got, want)
		}
	}
}

func TestMillisAndRatio(t *testing.T) {
	if Millis(1500*time.Microsecond) != "1.50ms" {
		t.Fatalf("millis = %q", Millis(1500*time.Microsecond))
	}
	if Ratio(1, 4) != "25.0%" {
		t.Fatalf("ratio = %q", Ratio(1, 4))
	}
	if Ratio(1, 0) != "n/a" {
		t.Fatal("zero denominator")
	}
}
