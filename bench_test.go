// Benchmarks: one testing.B benchmark per table and figure of the paper's
// evaluation (Table 2, Fig. 11(a)-(l)) plus the DESIGN.md ablations. Each
// benchmark measures single-query evaluation wall time on the experiment's
// workload; the full parameter sweeps with modeled network time are
// produced by cmd/bench (go run ./cmd/bench -all).
package distreach_test

import (
	"fmt"
	"sync"
	"testing"

	"distreach/internal/automaton"
	"distreach/internal/baseline"
	"distreach/internal/bes"
	"distreach/internal/cluster"
	"distreach/internal/core"
	"distreach/internal/fragment"
	"distreach/internal/gen"
	"distreach/internal/mapreduce"
	"distreach/internal/reach"
	"distreach/internal/workload"
)

// benchScale shrinks the dataset analogues so a full -bench=. run stays in
// the minutes range; cmd/bench runs the full sizes.
const benchScale = 0.3

type fixture struct {
	fr *fragment.Fragmentation
	qs []workload.Query
	rq []workload.RPQQuery
}

var (
	fixMu    sync.Mutex
	fixtures = map[string]*fixture{}
)

// load builds (once) a partitioned dataset analogue plus query sets.
func load(tb testing.TB, name string, card int) *fixture {
	tb.Helper()
	key := fmt.Sprintf("%s/%d", name, card)
	fixMu.Lock()
	defer fixMu.Unlock()
	if f, ok := fixtures[key]; ok {
		return f
	}
	d, ok := workload.ByName(name)
	if !ok {
		tb.Fatalf("unknown dataset %s", name)
	}
	d.V = int(float64(d.V) * benchScale)
	d.E = int(float64(d.E) * benchScale)
	if card > 0 {
		d.CardF = card
	}
	g := d.Generate()
	fr, err := fragment.Random(g, d.CardF, d.Seed)
	if err != nil {
		tb.Fatal(err)
	}
	f := &fixture{
		fr: fr,
		qs: workload.ReachQueries(g, 16, 0.3, d.Seed+1),
		rq: workload.RPQQueries(g, 16, workload.Complexity{States: 8, Transitions: 16, Labels: 8}, d.Seed+2),
	}
	fixtures[key] = f
	return f
}

// BenchmarkTable2 measures the three reachability algorithms on the five
// Table 2 dataset analogues with card(F)=4.
func BenchmarkTable2(b *testing.B) {
	for _, name := range []string{"LiveJournal", "WikiTalk", "BerkStan", "NotreDame", "Amazon"} {
		f := load(b, name, 4)
		cl := cluster.New(f.fr.Card(), cluster.NetModel{})
		b.Run(name+"/disReach", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				q := f.qs[i%len(f.qs)]
				core.DisReach(cl, f.fr, q.S, q.T, nil)
			}
		})
		b.Run(name+"/disReachn", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				q := f.qs[i%len(f.qs)]
				baseline.DisReachN(cl, f.fr, q.S, q.T)
			}
		})
		b.Run(name+"/disReachm", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				q := f.qs[i%len(f.qs)]
				baseline.DisReachM(cl, f.fr, q.S, q.T)
			}
		})
	}
}

// BenchmarkFig11a: reachability vs card(F) (sweep endpoints only; the
// harness runs the full sweep).
func BenchmarkFig11a(b *testing.B) {
	for _, card := range []int{2, 20} {
		f := load(b, "LiveJournal", card)
		cl := cluster.New(card, cluster.NetModel{})
		b.Run(fmt.Sprintf("card=%d/disReach", card), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				q := f.qs[i%len(f.qs)]
				core.DisReach(cl, f.fr, q.S, q.T, nil)
			}
		})
		b.Run(fmt.Sprintf("card=%d/disReachm", card), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				q := f.qs[i%len(f.qs)]
				baseline.DisReachM(cl, f.fr, q.S, q.T)
			}
		})
	}
}

// synthetic builds the Fig. 11(b)/(h) style densification workloads.
func synthetic(tb testing.TB, v, e, labels, card int, seed uint64) *fixture {
	tb.Helper()
	key := fmt.Sprintf("syn/%d/%d/%d/%d", v, e, labels, card)
	fixMu.Lock()
	defer fixMu.Unlock()
	if f, ok := fixtures[key]; ok {
		return f
	}
	g := workload.Synthetic(v, e, labels, seed)
	fr, err := fragment.Random(g, card, seed)
	if err != nil {
		tb.Fatal(err)
	}
	f := &fixture{
		fr: fr,
		qs: workload.ReachQueries(g, 16, 0.3, seed+1),
		rq: workload.RPQQueries(g, 16, workload.Complexity{States: 8, Transitions: 16, Labels: 8}, seed+2),
	}
	fixtures[key] = f
	return f
}

// BenchmarkFig11b: reachability vs fragment size (endpoints of the sweep).
func BenchmarkFig11b(b *testing.B) {
	for _, sizeF := range []int{3500, 31500} {
		total := int(float64(sizeF*8) * benchScale)
		f := synthetic(b, total/4, total-total/4, 0, 8, uint64(sizeF))
		cl := cluster.New(8, cluster.NetModel{})
		b.Run(fmt.Sprintf("sizeF=%d/disReach", sizeF), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				q := f.qs[i%len(f.qs)]
				core.DisReach(cl, f.fr, q.S, q.T, nil)
			}
		})
	}
}

// BenchmarkFig11c: the large-graph endpoint, disReach vs disReachm.
func BenchmarkFig11c(b *testing.B) {
	f := synthetic(b, 36000, 360000, 0, 10, 33)
	cl := cluster.New(10, cluster.NetModel{})
	b.Run("disReach", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			q := f.qs[i%len(f.qs)]
			core.DisReach(cl, f.fr, q.S, q.T, nil)
		}
	})
	b.Run("disReachm", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			q := f.qs[i%len(f.qs)]
			baseline.DisReachM(cl, f.fr, q.S, q.T)
		}
	})
}

// BenchmarkFig11d: bounded reachability, disDist vs disDistn.
func BenchmarkFig11d(b *testing.B) {
	f := load(b, "WikiTalk", 10)
	cl := cluster.New(10, cluster.NetModel{})
	b.Run("disDist", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			q := f.qs[i%len(f.qs)]
			core.DisDist(cl, f.fr, q.S, q.T, 10, nil)
		}
	})
	b.Run("disDistn", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			q := f.qs[i%len(f.qs)]
			baseline.DisDistN(cl, f.fr, q.S, q.T, 10)
		}
	})
}

// BenchmarkFig11e: regular reachability on the labeled datasets.
func BenchmarkFig11e(b *testing.B) {
	for _, name := range []string{"Citation", "MEME", "Youtube", "Internet"} {
		f := load(b, name, 0)
		cl := cluster.New(f.fr.Card(), cluster.NetModel{})
		b.Run(name+"/disRPQ", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				q := f.rq[i%len(f.rq)]
				core.DisRPQ(cl, f.fr, q.S, q.T, q.A, nil)
			}
		})
		b.Run(name+"/disRPQd", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				q := f.rq[i%len(f.rq)]
				baseline.DisRPQD(cl, f.fr, q.S, q.T, q.A)
			}
		})
		b.Run(name+"/disRPQn", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				q := f.rq[i%len(f.rq)]
				baseline.DisRPQN(cl, f.fr, q.S, q.T, q.A)
			}
		})
	}
}

// BenchmarkFig11f reports bytes shipped per query as a custom metric — the
// traffic counterpart of Fig. 11(e).
func BenchmarkFig11f(b *testing.B) {
	for _, name := range []string{"Citation", "Youtube"} {
		f := load(b, name, 0)
		cl := cluster.New(f.fr.Card(), cluster.NetModel{})
		b.Run(name+"/disRPQ", func(b *testing.B) {
			var bytes int64
			for i := 0; i < b.N; i++ {
				q := f.rq[i%len(f.rq)]
				bytes += core.DisRPQ(cl, f.fr, q.S, q.T, q.A, nil).Report.Bytes
			}
			b.ReportMetric(float64(bytes)/float64(b.N), "bytes/query")
		})
		b.Run(name+"/disRPQd", func(b *testing.B) {
			var bytes int64
			for i := 0; i < b.N; i++ {
				q := f.rq[i%len(f.rq)]
				bytes += baseline.DisRPQD(cl, f.fr, q.S, q.T, q.A).Report.Bytes
			}
			b.ReportMetric(float64(bytes)/float64(b.N), "bytes/query")
		})
	}
}

// BenchmarkFig11g: query-complexity endpoints on the Youtube analogue.
func BenchmarkFig11g(b *testing.B) {
	f := load(b, "Youtube", 0)
	cl := cluster.New(f.fr.Card(), cluster.NetModel{})
	for _, vq := range []int{4, 18} {
		qs := workload.RPQQueries(f.fr.Graph(), 16,
			workload.Complexity{States: vq, Transitions: 2 * vq, Labels: 8}, uint64(vq))
		b.Run(fmt.Sprintf("Vq=%d/disRPQ", vq), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				q := qs[i%len(qs)]
				core.DisRPQ(cl, f.fr, q.S, q.T, q.A, nil)
			}
		})
	}
}

// BenchmarkFig11h: fragment-size endpoints for regular reachability.
func BenchmarkFig11h(b *testing.B) {
	for _, sizeF := range []int{3500, 31500} {
		total := int(float64(sizeF*10) * benchScale)
		f := synthetic(b, total/4, total-total/4, 50, 10, uint64(sizeF)+100)
		cl := cluster.New(10, cluster.NetModel{})
		b.Run(fmt.Sprintf("sizeF=%d/disRPQ", sizeF), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				q := f.rq[i%len(f.rq)]
				core.DisRPQ(cl, f.fr, q.S, q.T, q.A, nil)
			}
		})
	}
}

// BenchmarkFig11i: card(F) endpoints for regular reachability.
func BenchmarkFig11i(b *testing.B) {
	for _, card := range []int{6, 20} {
		f := synthetic(b, 36000, 144000, 50, card, uint64(card))
		cl := cluster.New(card, cluster.NetModel{})
		b.Run(fmt.Sprintf("card=%d/disRPQ", card), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				q := f.rq[i%len(f.rq)]
				core.DisRPQ(cl, f.fr, q.S, q.T, q.A, nil)
			}
		})
	}
}

// BenchmarkFig11j: large labeled graph, disRPQ vs disRPQd.
func BenchmarkFig11j(b *testing.B) {
	f := synthetic(b, 36000, 360000, 50, 10, 51)
	cl := cluster.New(10, cluster.NetModel{})
	b.Run("disRPQ", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			q := f.rq[i%len(f.rq)]
			core.DisRPQ(cl, f.fr, q.S, q.T, q.A, nil)
		}
	})
	b.Run("disRPQd", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			q := f.rq[i%len(f.rq)]
			baseline.DisRPQD(cl, f.fr, q.S, q.T, q.A)
		}
	})
}

// BenchmarkFig11k: MRdRPQ across query complexities Q1..Q4.
func BenchmarkFig11k(b *testing.B) {
	g := workload.Synthetic(12000, 36000, 12, 200)
	for qi, c := range []workload.Complexity{
		{States: 4, Transitions: 6, Labels: 8},
		{States: 12, Transitions: 14, Labels: 8},
	} {
		qs := workload.RPQQueries(g, 16, c, uint64(qi)*17)
		b.Run(fmt.Sprintf("Vq=%d", c.States), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				q := qs[i%len(qs)]
				if _, err := mapreduce.MRdRPQ(g, q.S, q.T, q.A, 10); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig11l: MRdRPQ across mapper counts.
func BenchmarkFig11l(b *testing.B) {
	g := workload.Synthetic(12000, 36000, 12, 61)
	qs := workload.RPQQueries(g, 16, workload.Complexity{States: 6, Transitions: 8, Labels: 8}, 62)
	for _, mappers := range []int{5, 30} {
		b.Run(fmt.Sprintf("mappers=%d", mappers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				q := qs[i%len(qs)]
				if _, err := mapreduce.MRdRPQ(g, q.S, q.T, q.A, mappers); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationIndex compares the local reachability engines inside
// localEval (ablation A1).
func BenchmarkAblationIndex(b *testing.B) {
	f := load(b, "Internet", 4)
	cl := cluster.New(4, cluster.NetModel{})
	engines := []struct {
		name string
		opt  *core.Options
	}{
		{"bfs", nil},
		{"tc-bitset", &core.Options{LocalIndex: core.IndexCache(reach.KindTC)}},
		{"interval", &core.Options{LocalIndex: core.IndexCache(reach.KindInterval)}},
		{"landmark", &core.Options{LocalIndex: core.IndexCache(reach.KindLandmark)}},
	}
	for _, e := range engines {
		b.Run(e.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				q := f.qs[i%len(f.qs)]
				core.DisReach(cl, f.fr, q.S, q.T, e.opt)
			}
		})
	}
}

// BenchmarkAblationBES compares the equation-system solvers (ablation A2).
func BenchmarkAblationBES(b *testing.B) {
	build := func(n int) *bes.System[int] {
		s := bes.New[int]()
		// Pure chain: adversarial for round-based iteration (see exp A2).
		for v := 0; v < n-1; v++ {
			s.Add(v, false, v+1)
		}
		s.Add(n-1, true)
		return s
	}
	for _, n := range []int{1000, 16000} {
		s := build(n)
		b.Run(fmt.Sprintf("evalDG/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				s.Solve()
			}
		})
		b.Run(fmt.Sprintf("fixpoint/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				s.SolveFixpoint()
			}
		})
	}
}

// BenchmarkAblationPartitioner shows how the partitioning strategy drives
// |Vf| and hence traffic (DESIGN.md ablation 3).
func BenchmarkAblationPartitioner(b *testing.B) {
	d, _ := workload.ByName("Amazon")
	g := d.Generate()
	parts := []struct {
		name  string
		build func() (*fragment.Fragmentation, error)
	}{
		{"random", func() (*fragment.Fragmentation, error) { return fragment.Random(g, 8, 1) }},
		{"hash", func() (*fragment.Fragmentation, error) { return fragment.Hash(g, 8) }},
		{"greedy", func() (*fragment.Fragmentation, error) { return fragment.Greedy(g, 8, 1) }},
		{"contiguous", func() (*fragment.Fragmentation, error) { return fragment.Contiguous(g, 8) }},
	}
	qs := workload.ReachQueries(g, 16, 0.3, 5)
	for _, p := range parts {
		fr, err := p.build()
		if err != nil {
			b.Fatal(err)
		}
		cl := cluster.New(8, cluster.NetModel{})
		b.Run(p.name, func(b *testing.B) {
			var bytes int64
			for i := 0; i < b.N; i++ {
				q := qs[i%len(qs)]
				bytes += core.DisReach(cl, fr, q.S, q.T, nil).Report.Bytes
			}
			b.ReportMetric(float64(bytes)/float64(b.N), "bytes/query")
			b.ReportMetric(float64(fr.Vf()), "Vf")
		})
	}
}

// BenchmarkAutomatonConstruction measures Gq(R) construction, the
// O(|R| log |R|) step paid once per query at the coordinator.
func BenchmarkAutomatonConstruction(b *testing.B) {
	rng := gen.NewRNG(9)
	labels := gen.LabelAlphabet(8)
	for _, states := range []int{8, 32} {
		b.Run(fmt.Sprintf("states=%d", states), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				automaton.Random(rng, states, 2*states, labels)
			}
		})
	}
}
